//! ChitChat's Real-time Transient Social Relationship (RTSR) model.
//!
//! Each node keeps a table of interests — keywords with a weight in
//! `[0, 1]`. *Direct* interests are the user's own subscriptions, created at
//! weight 0.5; *transient* interests are acquired from encountered peers and
//! represent multi-hop social reach. On every exchange between connected
//! devices the weights are first decayed (Algorithm 1), the decayed tables
//! are swapped, and then grown from the peer's weights (Algorithm 2).
//!
//! The thesis leaves two things open, resolved here and in `DESIGN.md`:
//!
//! 1. The growth increment `Δ = w_v(I)·(T_c − T_v)/ψ` scales with raw
//!    connection seconds and would saturate every weight within one contact;
//!    a growth-rate constant [`ChitChatParams::growth_rate`] (γ) scales the
//!    increment, and repeated exchanges during one contact use the time
//!    since the previous exchange so growth is linear in contact time.
//! 2. The decay divisor `β·(T_c − T_l)` is clamped below by one exchange
//!    interval (avoiding division by ~0), and decay never *raises* a weight.

use serde::{Deserialize, Error, Serialize, Value};

use dtn_sim::message::Keyword;
use dtn_sim::time::SimTime;

use crate::exchange::KeywordSet;

/// Whether an interest was subscribed by the user or acquired from peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterestKind {
    /// Subscribed by the user (the paper's "direct social interest").
    Direct,
    /// Acquired from encountered devices (a transient social relationship).
    Transient,
}

/// One interest entry in a node's table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterestEntry {
    /// Current weight in `[0, 1]`.
    pub weight: f64,
    /// Direct (subscribed) or transient (acquired).
    pub kind: InterestKind,
    /// `T_l`: the last time a connected device shared this interest.
    pub last_shared: SimTime,
}

/// One stored row of an interest table: the keyword and its entry
/// flattened into a single 24-byte record. The natural
/// `(Keyword, InterestEntry)` tuple pads to 32 bytes (the `f64`s force
/// 8-byte alignment after the 4-byte keyword); every settlement tick
/// streams whole tables through decay and growth, so the flat layout
/// cuts that traffic by a quarter. The wire format and the public API
/// keep `(Keyword, InterestEntry)` — rows are an internal arena layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterestRow {
    /// The keyword this row tracks.
    pub keyword: Keyword,
    /// Direct (subscribed) or transient (acquired).
    pub kind: InterestKind,
    /// Current weight in `[0, 1]`.
    pub weight: f64,
    /// `T_l`: the last time a connected device shared this interest.
    pub last_shared: SimTime,
}

impl InterestRow {
    /// The row's entry part, in the public `InterestEntry` shape.
    #[must_use]
    pub fn entry(&self) -> InterestEntry {
        InterestEntry {
            weight: self.weight,
            kind: self.kind,
            last_shared: self.last_shared,
        }
    }
}

/// Tunable constants of the RTSR model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChitChatParams {
    /// Decay constant β (the worked example in Algorithm 1 uses 2).
    pub beta: f64,
    /// Growth-rate constant γ applied to Algorithm 2's increment.
    pub growth_rate: f64,
    /// Seconds between weight exchanges while a contact stays up.
    pub exchange_interval_secs: f64,
    /// Transient interests whose weight falls below this are dropped.
    pub transient_floor: f64,
    /// Initial weight of a fresh direct interest (the paper fixes 0.5).
    pub initial_weight: f64,
}

impl ChitChatParams {
    /// Paper-faithful defaults.
    #[must_use]
    pub fn paper_default() -> Self {
        ChitChatParams {
            beta: 2.0,
            growth_rate: 0.02,
            exchange_interval_secs: 30.0,
            transient_floor: 0.005,
            initial_weight: 0.5,
        }
    }
}

impl Default for ChitChatParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// ψ for Algorithm 2: maps the (own kind, peer kind) case to `{1..6}`.
///
/// The thesis enumerates two of the six cases ("if both u and v have I as a
/// direct interest, ψ is 1; if u has a direct interest and v has a transient
/// interest, ψ is 2") — the remaining four follow the same direct-first
/// ordering: the stronger the provenance on both sides, the faster the
/// growth.
#[must_use]
pub fn psi(own: Option<InterestKind>, peer: InterestKind) -> u8 {
    use InterestKind::{Direct, Transient};
    match (own, peer) {
        (Some(Direct), Direct) => 1,
        (Some(Direct), Transient) => 2,
        (Some(Transient), Direct) => 3,
        (Some(Transient), Transient) => 4,
        (None, Direct) => 5,
        (None, Transient) => 6,
    }
}

/// A node's interest table (its social profile plus TSRs).
///
/// Stored as a `Vec` sorted by keyword: tables hold tens of entries, and
/// the exchange ritual (clone → decay → grow) runs for every due contact
/// pair every step — on that path a sorted vector beats a hash map on
/// every count (lookups stay cache-resident, cloning is one memcpy, and
/// `grow` consumes the peer's entries in keyword order without the sort
/// pass a hashed table would force for determinism).
#[derive(Debug, Clone, Default)]
pub struct InterestTable {
    entries: Vec<InterestRow>,
    /// Bitmap over the keywords present in `entries`, kept in sync by
    /// every mutation. [`crate::exchange::shared_keywords`] unions these
    /// instead of walking each peer's entries — the walk dominated the
    /// settlement-tick profile at 1k nodes.
    keywords: KeywordSet,
}

/// Two tables are equal iff their entries are — the bitmap is derived
/// state (and its trailing zero words may differ between an
/// incrementally-built and a freshly-rebuilt set).
impl PartialEq for InterestTable {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

/// The wire shape stays `{"entries": [...]}` — the bitmap is rebuilt on
/// load, so snapshots written before it existed restore byte-identically.
impl Serialize for InterestTable {
    fn to_value(&self) -> Value {
        let wire: Vec<(Keyword, InterestEntry)> =
            self.entries.iter().map(|r| (r.keyword, r.entry())).collect();
        Value::Map(vec![("entries".to_string(), wire.to_value())])
    }
}

impl Deserialize for InterestTable {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let wire: Vec<(Keyword, InterestEntry)> = match v.get("entries") {
            Some(e) => Deserialize::from_value(e)?,
            None => return Err(Error::missing_field("InterestTable", "entries")),
        };
        let mut keywords = KeywordSet::new();
        let entries = wire
            .into_iter()
            .map(|(keyword, e)| {
                keywords.insert(keyword);
                InterestRow {
                    keyword,
                    kind: e.kind,
                    weight: e.weight,
                    last_shared: e.last_shared,
                }
            })
            .collect();
        Ok(InterestTable { entries, keywords })
    }
}

impl InterestTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of `keyword` in the sorted entries, or its insertion point.
    fn position(&self, keyword: Keyword) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&keyword, |r| r.keyword)
    }

    /// Subscribes the user to `keyword` as a direct interest at the initial
    /// weight (0.5 per the paper). Re-subscribing an existing interest
    /// upgrades a transient entry to direct without losing its weight.
    pub fn subscribe(&mut self, keyword: Keyword, params: &ChitChatParams, now: SimTime) {
        match self.position(keyword) {
            Ok(i) => self.entries[i].kind = InterestKind::Direct,
            Err(i) => {
                self.entries.insert(
                    i,
                    InterestRow {
                        keyword,
                        kind: InterestKind::Direct,
                        weight: params.initial_weight,
                        last_shared: now,
                    },
                );
                self.keywords.insert(keyword);
            }
        }
    }

    /// The bitmap of keywords present in this table.
    #[must_use]
    pub fn keywords(&self) -> &KeywordSet {
        &self.keywords
    }

    /// Bytes of memory this table holds (struct plus heap capacity) —
    /// the per-node interest footprint, exported as a metrics gauge.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.entries.capacity() * std::mem::size_of::<InterestRow>()
            + self.keywords.state_bytes()
    }

    /// The entry for `keyword`, if present.
    #[must_use]
    pub fn get(&self, keyword: Keyword) -> Option<InterestEntry> {
        self.position(keyword).ok().map(|i| self.entries[i].entry())
    }

    /// Current weight of `keyword` (0 when absent).
    #[must_use]
    pub fn weight(&self, keyword: Keyword) -> f64 {
        self.get(keyword).map_or(0.0, |e| e.weight)
    }

    /// Whether `keyword` is a *direct* interest — the destination test.
    #[must_use]
    pub fn is_direct(&self, keyword: Keyword) -> bool {
        self.get(keyword)
            .is_some_and(|e| e.kind == InterestKind::Direct)
    }

    /// Whether the node has any direct interest among `keywords`.
    #[must_use]
    pub fn is_destination_for(&self, keywords: &[Keyword]) -> bool {
        keywords.iter().any(|&k| self.is_direct(k))
    }

    /// `S_u`: the sum of weights over a message's keywords (the routing
    /// comparison quantity — forward M from u to v iff `S_v > S_u`).
    #[must_use]
    pub fn sum_of_weights(&self, keywords: &[Keyword]) -> f64 {
        keywords.iter().map(|&k| self.weight(k)).sum()
    }

    /// Mean weight over a message's keywords (the relay-threshold test of
    /// the incentive mechanism uses the average, Table 5.1's 0.8).
    #[must_use]
    pub fn mean_weight(&self, keywords: &[Keyword]) -> f64 {
        if keywords.is_empty() {
            return 0.0;
        }
        self.sum_of_weights(keywords) / keywords.len() as f64
    }

    /// Number of interests tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(keyword, entry)` pairs in ascending keyword order.
    pub fn iter(&self) -> impl Iterator<Item = (Keyword, InterestEntry)> + '_ {
        self.entries.iter().map(|r| (r.keyword, r.entry()))
    }

    /// Records that a currently-connected device shares `keyword` (updates
    /// `T_l`, freezing decay for this interest while the peer is around).
    pub fn mark_shared(&mut self, keyword: Keyword, now: SimTime) {
        if let Ok(i) = self.position(keyword) {
            self.entries[i].last_shared = now;
        }
    }

    /// Algorithm 1 — decays every interest not currently shared by a
    /// connected device.
    ///
    /// `shared_now(keyword)` reports whether some connected device has the
    /// interest. Direct interests decay toward the 0.5 baseline; transient
    /// interests decay toward 0 and are dropped at the floor.
    pub fn decay(
        &mut self,
        now: SimTime,
        params: &ChitChatParams,
        mut shared_now: impl FnMut(Keyword) -> bool,
    ) {
        let min_elapsed = params.exchange_interval_secs.max(1.0);
        let keywords = &mut self.keywords;
        self.entries.retain_mut(|e| {
            let keyword = e.keyword;
            if shared_now(keyword) {
                e.last_shared = now;
                return true;
            }
            let elapsed = now.duration_since(e.last_shared).as_secs();
            if elapsed <= 0.0 {
                return true;
            }
            let divisor = (params.beta * elapsed.max(min_elapsed)).max(1.0);
            let decayed = match e.kind {
                InterestKind::Direct => (e.weight - 0.5) / divisor + 0.5,
                InterestKind::Transient => e.weight / divisor,
            };
            // Decay never raises a weight (divisors < 1 are already clamped
            // away, but a direct weight below baseline must not spring back
            // above its previous value either).
            e.weight = decayed.min(e.weight).clamp(0.0, 1.0);
            let keep = e.kind == InterestKind::Direct || e.weight >= params.transient_floor;
            if !keep {
                keywords.remove(keyword);
            }
            keep
        });
    }

    /// Algorithm 2 — grows this table from a connected peer's (already
    /// decayed) table.
    ///
    /// `connected_secs` is the time credited for this exchange: the span
    /// since the previous exchange with this peer (so repeated exchanges
    /// during one contact credit the contact time exactly once). Unknown
    /// peer interests are acquired as transient entries.
    pub fn grow(
        &mut self,
        peer: &InterestTable,
        connected_secs: f64,
        params: &ChitChatParams,
        now: SimTime,
    ) {
        let mut out = Vec::new();
        if self.grow_into(&peer.entries, connected_secs, params, now, &mut out) {
            self.commit_entries(&mut out);
        }
    }

    /// The raw sorted entry slice (crate-internal: the exchange ritual
    /// reads a pre-growth table while its owner is mutably borrowed).
    pub(crate) fn entries_slice(&self) -> &[InterestRow] {
        &self.entries
    }

    /// Merge-walk core of [`Self::grow`]: writes the grown entry vector
    /// into `out` (cleared first) and records newly-acquired keywords in
    /// the bitmap, but leaves `self.entries` untouched so a caller can
    /// still read the pre-growth table — the RTSR swap ritual grows both
    /// sides from each other's *pre-growth* entries. Returns whether
    /// anything was computed; commit with [`Self::commit_entries`].
    ///
    /// Both tables are in keyword order, so one linear walk replaces the
    /// per-peer-entry binary search + mid-vector insert (quadratic while
    /// tables fill, and the second-hottest call in the 1k-node settlement
    /// profile). The per-entry arithmetic and its evaluation order are
    /// unchanged, so weights stay bit-identical.
    pub(crate) fn grow_into(
        &mut self,
        peer_entries: &[InterestRow],
        connected_secs: f64,
        params: &ChitChatParams,
        now: SimTime,
        out: &mut Vec<InterestRow>,
    ) -> bool {
        if connected_secs <= 0.0 {
            return false;
        }
        out.clear();
        out.reserve(self.entries.len() + peer_entries.len());
        let mut i = 0;
        for peer_entry in peer_entries {
            let keyword = peer_entry.keyword;
            if peer_entry.weight <= 0.0 {
                continue;
            }
            while i < self.entries.len() && self.entries[i].keyword < keyword {
                out.push(self.entries[i]);
                i += 1;
            }
            if i < self.entries.len() && self.entries[i].keyword == keyword {
                let mut e = self.entries[i];
                i += 1;
                let psi = f64::from(psi(Some(e.kind), peer_entry.kind));
                let delta = params.growth_rate * peer_entry.weight * connected_secs / psi;
                e.weight = (e.weight + delta).min(1.0);
                e.last_shared = now;
                out.push(e);
            } else {
                let psi = f64::from(psi(None, peer_entry.kind));
                let delta = params.growth_rate * peer_entry.weight * connected_secs / psi;
                let weight = delta.min(1.0);
                if weight >= params.transient_floor {
                    out.push(InterestRow {
                        keyword,
                        kind: InterestKind::Transient,
                        weight,
                        last_shared: now,
                    });
                    self.keywords.insert(keyword);
                }
            }
        }
        out.extend_from_slice(&self.entries[i..]);
        true
    }

    /// Installs a vector produced by [`Self::grow_into`], handing the old
    /// entry storage back through `out` for reuse.
    pub(crate) fn commit_entries(&mut self, out: &mut Vec<InterestRow>) {
        std::mem::swap(&mut self.entries, out);
    }

    /// Runs *both* directions of Algorithm 2 in place, for the steady
    /// state where neither side contributes a new keyword to the other:
    /// every unmatched peer keyword would arrive below the transient
    /// floor. Then growth only rewrites matched entries' weights, so no
    /// merge vector (and no pre-growth snapshot) is needed at all — one
    /// two-pointer pass reads both sides' pre-growth weights into locals
    /// and writes both updates. Returns `false` (both tables untouched)
    /// when either side would have to insert a transient entry — the
    /// caller falls back to the buffered merging path. The per-entry
    /// arithmetic is the same expression as `grow_into` applied to the
    /// same pre-growth inputs, so weights stay bit-identical whichever
    /// path runs.
    pub(crate) fn grow_mutual_in_place(
        a: &mut InterestTable,
        b: &mut InterestTable,
        connected_secs: f64,
        params: &ChitChatParams,
        now: SimTime,
    ) -> bool {
        if connected_secs <= 0.0 {
            return true;
        }
        // Read-only bail pass: any keyword one side holds (with positive
        // weight) that the other would acquire at or above the floor
        // forces the inserting merge path. Equal keyword bitmaps mean
        // there is no unmatched keyword on either side, so the pass is
        // vacuous — skip the walk entirely (the steady-state common case
        // once a contact cluster's tables have converged).
        let bitmaps_equal = a.keywords.same_keywords(&b.keywords);
        let (mut i, mut j) = (0usize, 0usize);
        while !bitmaps_equal && (i < a.entries.len() || j < b.entries.len()) {
            let ka = a.entries.get(i).map(|r| r.keyword);
            let kb = b.entries.get(j).map(|r| r.keyword);
            match (ka, kb) {
                (Some(ka), Some(kb)) if ka == kb => {
                    i += 1;
                    j += 1;
                }
                (Some(ka), kb) if kb.is_none() || ka < kb.expect("some") => {
                    let e = a.entries[i];
                    if e.weight > 0.0 {
                        let psi = f64::from(psi(None, e.kind));
                        let delta = params.growth_rate * e.weight * connected_secs / psi;
                        if delta.min(1.0) >= params.transient_floor {
                            return false;
                        }
                    }
                    i += 1;
                }
                _ => {
                    let e = b.entries[j];
                    if e.weight > 0.0 {
                        let psi = f64::from(psi(None, e.kind));
                        let delta = params.growth_rate * e.weight * connected_secs / psi;
                        if delta.min(1.0) >= params.transient_floor {
                            return false;
                        }
                    }
                    j += 1;
                }
            }
        }
        // Apply pass over the keyword intersection. Kinds never change
        // during growth, and each update reads only the other side's
        // pre-growth weight (captured before either write), so the two
        // directions cannot observe each other's updates.
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.entries.len() && j < b.entries.len() {
            let (ka, kb) = (a.entries[i].keyword, b.entries[j].keyword);
            if ka < kb {
                i += 1;
            } else if kb < ka {
                j += 1;
            } else {
                let (wa, kind_a) = (a.entries[i].weight, a.entries[i].kind);
                let (wb, kind_b) = (b.entries[j].weight, b.entries[j].kind);
                if wb > 0.0 {
                    let psi = f64::from(psi(Some(kind_a), kind_b));
                    let delta = params.growth_rate * wb * connected_secs / psi;
                    let e = &mut a.entries[i];
                    e.weight = (e.weight + delta).min(1.0);
                    e.last_shared = now;
                }
                if wa > 0.0 {
                    let psi = f64::from(psi(Some(kind_b), kind_a));
                    let delta = params.growth_rate * wa * connected_secs / psi;
                    let e = &mut b.entries[j];
                    e.weight = (e.weight + delta).min(1.0);
                    e.last_shared = now;
                }
                i += 1;
                j += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn params() -> ChitChatParams {
        ChitChatParams::paper_default()
    }

    #[test]
    fn subscribe_sets_initial_weight_half() {
        let mut table = InterestTable::new();
        table.subscribe(Keyword(1), &params(), t(0.0));
        let e = table.get(Keyword(1)).expect("present");
        assert_eq!(e.weight, 0.5);
        assert_eq!(e.kind, InterestKind::Direct);
        assert!(table.is_direct(Keyword(1)));
    }

    #[test]
    fn resubscribe_upgrades_transient() {
        let mut table = InterestTable::new();
        let mut peer = InterestTable::new();
        peer.subscribe(Keyword(1), &params(), t(0.0));
        table.grow(&peer, 100.0, &params(), t(100.0));
        assert!(!table.is_direct(Keyword(1)));
        let w = table.weight(Keyword(1));
        table.subscribe(Keyword(1), &params(), t(100.0));
        assert!(table.is_direct(Keyword(1)));
        assert_eq!(table.weight(Keyword(1)), w, "weight preserved on upgrade");
    }

    #[test]
    fn psi_cases_match_paper() {
        use InterestKind::{Direct, Transient};
        assert_eq!(psi(Some(Direct), Direct), 1, "both direct → 1 (paper)");
        assert_eq!(
            psi(Some(Direct), Transient),
            2,
            "direct/transient → 2 (paper)"
        );
        assert_eq!(psi(Some(Transient), Direct), 3);
        assert_eq!(psi(Some(Transient), Transient), 4);
        assert_eq!(psi(None, Direct), 5);
        assert_eq!(psi(None, Transient), 6);
    }

    #[test]
    fn decay_follows_algorithm_one() {
        // The thesis' worked example: W_p = 0.6, β = 2, elapsed = 5 s →
        // W_n = (0.6 − 0.5)/(2·5) + 0.5 = 0.51. (The thesis narration says
        // 0.55 but its own formula evaluates to 0.51; we implement the
        // formula.) The elapsed clamp uses min_elapsed = max(interval, 1);
        // with interval 5 the divisor is exactly 2·5.
        let mut p = params();
        p.exchange_interval_secs = 5.0;
        let mut table = InterestTable::new();
        table.subscribe(Keyword(1), &p, t(0.0));
        if let Some(e) = table.entries.iter_mut().find(|r| r.keyword == Keyword(1)) {
            e.weight = 0.6;
        }
        table.decay(t(5.0), &p, |_| false);
        let w = table.weight(Keyword(1));
        assert!((w - 0.51).abs() < 1e-12, "got {w}");
    }

    #[test]
    fn decay_skips_shared_interests() {
        let mut table = InterestTable::new();
        table.subscribe(Keyword(1), &params(), t(0.0));
        if let Some(e) = table.entries.iter_mut().find(|r| r.keyword == Keyword(1)) {
            e.weight = 0.9;
        }
        table.decay(t(100.0), &params(), |_| true);
        assert_eq!(table.weight(Keyword(1)), 0.9, "shared interest frozen");
        // And T_l was refreshed, so a later decay measures from 100 s.
        table.decay(t(101.0), &params(), |_| false);
        assert!(table.weight(Keyword(1)) < 0.9);
    }

    #[test]
    fn direct_decays_toward_half_transient_toward_zero() {
        let p = params();
        let mut table = InterestTable::new();
        table.subscribe(Keyword(1), &p, t(0.0));
        if let Some(e) = table.entries.iter_mut().find(|r| r.keyword == Keyword(1)) {
            e.weight = 1.0;
        }
        let mut peer = InterestTable::new();
        peer.subscribe(Keyword(2), &p, t(0.0));
        table.grow(&peer, 200.0, &p, t(0.0));
        let transient_before = table.weight(Keyword(2));
        assert!(transient_before > 0.0);

        for step in 1..=50 {
            table.decay(t(step as f64 * 60.0), &p, |_| false);
        }
        let direct = table.weight(Keyword(1));
        assert!(
            (direct - 0.5).abs() < 0.01,
            "direct converges to 0.5, got {direct}"
        );
        assert!(
            table.get(Keyword(2)).is_none(),
            "transient dropped at floor"
        );
    }

    #[test]
    fn decay_never_raises_weight() {
        let p = params();
        let mut table = InterestTable::new();
        table.subscribe(Keyword(1), &p, t(0.0));
        // Direct weight *below* baseline must not spring back up.
        if let Some(e) = table.entries.iter_mut().find(|r| r.keyword == Keyword(1)) {
            e.weight = 0.2;
        }
        table.decay(t(10.0), &p, |_| false);
        assert!(table.weight(Keyword(1)) <= 0.2);
    }

    #[test]
    fn growth_is_faster_for_direct_pairs() {
        let p = params();
        let mut peer = InterestTable::new();
        peer.subscribe(Keyword(1), &p, t(0.0));
        peer.subscribe(Keyword(2), &p, t(0.0));

        // Table A holds kw1 direct; table B holds kw1 transient.
        let mut a = InterestTable::new();
        a.subscribe(Keyword(1), &p, t(0.0));
        let mut b = InterestTable::new();
        b.grow(&peer, 30.0, &p, t(30.0)); // acquires kw1 transient

        let a0 = a.weight(Keyword(1));
        let b0 = b.weight(Keyword(1));
        a.grow(&peer, 60.0, &p, t(90.0));
        b.grow(&peer, 60.0, &p, t(90.0));
        let da = a.weight(Keyword(1)) - a0;
        let db = b.weight(Keyword(1)) - b0;
        assert!(da > db, "ψ=1 grows faster than ψ=3: {da} vs {db}");
    }

    #[test]
    fn growth_caps_at_one() {
        let p = params();
        let mut peer = InterestTable::new();
        peer.subscribe(Keyword(1), &p, t(0.0));
        let mut table = InterestTable::new();
        table.subscribe(Keyword(1), &p, t(0.0));
        table.grow(&peer, 1e9, &p, t(0.0));
        assert_eq!(table.weight(Keyword(1)), 1.0);
    }

    #[test]
    fn zero_connected_time_changes_nothing() {
        let p = params();
        let mut peer = InterestTable::new();
        peer.subscribe(Keyword(1), &p, t(0.0));
        let mut table = InterestTable::new();
        table.grow(&peer, 0.0, &p, t(0.0));
        assert!(table.is_empty());
    }

    #[test]
    fn sum_and_mean_weights() {
        let p = params();
        let mut table = InterestTable::new();
        table.subscribe(Keyword(1), &p, t(0.0));
        table.subscribe(Keyword(2), &p, t(0.0));
        let kws = [Keyword(1), Keyword(2), Keyword(3)];
        assert_eq!(table.sum_of_weights(&kws), 1.0);
        assert!((table.mean_weight(&kws) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(table.mean_weight(&[]), 0.0);
        assert!(table.is_destination_for(&kws));
        assert!(!table.is_destination_for(&[Keyword(3)]));
    }
}
