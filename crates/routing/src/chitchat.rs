//! The ChitChat router (McGeehan, Lin, Madria — ICDCS 2016), the routing
//! substrate the paper's incentive mechanism is layered on.
//!
//! Per contact, the two devices run the RTSR weight exchange (decay → swap →
//! growth, [`crate::interests`]) and then the message-routing rule: device
//! `u` forwards message `M` to device `v` iff `S_v > S_u`, where `S` is the
//! sum of interest weights over `M`'s keywords — or if `v` is a destination
//! (holds a *direct* interest in one of `M`'s keywords).

use crate::exchange::{rtsr_exchange, shared_keywords_into, ExchangeWheel, KeywordSet};

use dtn_sim::buffer::InsertOutcome;
use dtn_sim::kernel::SimApi;
use dtn_sim::message::{Keyword, MessageId};
use dtn_sim::protocol::{Protocol, Reception};
use dtn_sim::time::SimTime;
use dtn_sim::world::NodeId;

use crate::interests::{ChitChatParams, InterestTable};

use dtn_sim::world::ordered_pair as pair;

/// The ChitChat protocol: RTSR modeling plus `S_v > S_u` routing.
#[derive(Debug)]
pub struct ChitChatRouter {
    params: ChitChatParams,
    tables: Vec<InterestTable>,
    /// Active contacts and their settlement schedule: the timing wheel
    /// tracks when each pair was last serviced (exchange + routing pass)
    /// and emits only the pairs actually due each tick.
    wheel: ExchangeWheel,
    /// Reusable due-pair emission buffer for [`Protocol::on_tick`].
    due_scratch: Vec<((NodeId, NodeId), f64)>,
    /// Reusable shared-keyword bitmaps for `exchange` — two per due pair.
    shared_scratch: (KeywordSet, KeywordSet),
}

impl ChitChatRouter {
    /// Creates a router for `node_count` nodes.
    #[must_use]
    pub fn new(node_count: usize, params: ChitChatParams) -> Self {
        ChitChatRouter {
            params,
            tables: vec![InterestTable::new(); node_count],
            wheel: ExchangeWheel::new(),
            due_scratch: Vec::new(),
            shared_scratch: (KeywordSet::new(), KeywordSet::new()),
        }
    }

    /// Subscribes `node` to direct interests (the `Subscribe` operator).
    pub fn subscribe(&mut self, node: NodeId, keywords: impl IntoIterator<Item = Keyword>) {
        for kw in keywords {
            self.tables[node.index()].subscribe(kw, &self.params, SimTime::ZERO);
        }
    }

    /// The interest table of `node`.
    #[must_use]
    pub fn table(&self, node: NodeId) -> &InterestTable {
        &self.tables[node.index()]
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &ChitChatParams {
        &self.params
    }

    /// Whether `node` is a destination for a message tagged `keywords`.
    #[must_use]
    pub fn is_destination(&self, node: NodeId, keywords: &[Keyword]) -> bool {
        self.tables[node.index()].is_destination_for(keywords)
    }

    /// Runs one RTSR weight exchange between connected `a` and `b`,
    /// crediting `connected_secs` of contact time.
    fn exchange(&mut self, api: &SimApi, a: NodeId, b: NodeId, connected_secs: f64) {
        let now = api.now();
        let (shared_a, shared_b) = (&mut self.shared_scratch.0, &mut self.shared_scratch.1);
        shared_keywords_into(&self.tables, api.peers_of_slice(a), shared_a);
        shared_keywords_into(&self.tables, api.peers_of_slice(b), shared_b);
        rtsr_exchange(
            &mut self.tables,
            a,
            b,
            connected_secs,
            &self.params,
            now,
            shared_a,
            shared_b,
        );
    }

    /// Applies the routing rule in both directions of a contact.
    fn route_pair(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        for (from, to) in [(a, b), (b, a)] {
            for id in api.buffer(from).ids_sorted() {
                self.offer(api, from, to, id);
            }
        }
    }

    /// Offers one message across one direction of a contact.
    fn offer(&mut self, api: &mut SimApi, from: NodeId, to: NodeId, id: MessageId) {
        if api.buffer(to).contains(id) || api.is_sending(from, to, id) {
            return;
        }
        let Some(copy) = api.buffer(from).get(id) else {
            return;
        };
        let keywords = copy.keywords();
        let dest = self.tables[to.index()].is_destination_for(&keywords);
        if dest && api.is_delivered(to, id) {
            return;
        }
        let s_from = self.tables[from.index()].sum_of_weights(&keywords);
        let s_to = self.tables[to.index()].sum_of_weights(&keywords);
        if dest || s_to > s_from {
            api.send(from, to, id);
        }
    }
}

impl Protocol for ChitChatRouter {
    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        // First exchange of the contact credits one step of connection time.
        self.exchange(api, a, b, api.step_len().as_secs());
        self.wheel
            .note_serviced(pair(a, b), api.now(), api.counters().steps);
        self.route_pair(api, a, b);
    }

    fn on_contact_down(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        let _ = api;
        self.wheel.remove(pair(a, b));
    }

    fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
        for peer in api.peers_of(node) {
            self.offer(api, node, peer, message);
        }
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
        let to = r.transfer.to;
        let id = r.transfer.message;
        if !matches!(r.outcome, InsertOutcome::Stored { .. }) {
            return;
        }
        let keywords = api
            .buffer(to)
            .get(id)
            .map(|c| c.keywords())
            .unwrap_or_default();
        if self.tables[to.index()].is_destination_for(&keywords) {
            api.mark_delivered(to, id);
        }
        // Offer the freshly received copy onward immediately.
        for peer in api.peers_of(to) {
            self.offer(api, to, peer, id);
        }
    }

    fn on_tick(&mut self, api: &mut SimApi) {
        // Periodic re-exchange and re-routing for long-lived contacts:
        // the wheel emits the same sorted due rows the full scan did.
        let now = api.now();
        let step = api.counters().steps;
        let mut due = std::mem::take(&mut self.due_scratch);
        self.wheel.drain_due_into(
            now,
            step,
            self.params.exchange_interval_secs,
            api.step_len().as_secs(),
            &mut due,
        );
        for &((a, b), credited) in &due {
            self.exchange(api, a, b, credited);
            self.wheel.note_serviced((a, b), now, step);
            self.route_pair(api, a, b);
        }
        self.due_scratch = due;
    }

    fn export_metrics(&self, registry: &mut dtn_sim::metrics::MetricsRegistry) {
        registry.set_gauge(
            "settlement.watched_pairs",
            self.wheel.watched_pairs() as f64,
        );
        registry.set_gauge(
            "settlement.wheel_occupancy",
            self.wheel.bucket_occupancy() as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::geometry::{Area, Point};
    use dtn_sim::kernel::{ScheduledMessage, SimulationBuilder};
    use dtn_sim::message::{Priority, Quality};
    use dtn_sim::mobility::ScriptedWaypoints;
    use dtn_sim::time::SimTime;

    fn msg(at: f64, source: u32, tags: Vec<Keyword>, expected: Vec<NodeId>) -> ScheduledMessage {
        ScheduledMessage {
            at: SimTime::from_secs(at),
            source: NodeId(source),
            size_bytes: 10_000,
            ttl_secs: 100_000.0,
            priority: Priority::High,
            quality: Quality::new(0.9),
            ground_truth: tags.clone(),
            source_tags: tags,
            expected_destinations: expected,
        }
    }

    #[test]
    fn direct_interest_destination_receives() {
        // n0 (source) and n1 (destination with direct interest) in range.
        let mut router = ChitChatRouter::new(2, ChitChatParams::paper_default());
        router.subscribe(NodeId(1), [Keyword(1)]);
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 3)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
            .message(msg(5.0, 0, vec![Keyword(1)], vec![NodeId(1)]))
            .build(router);
        let summary = sim.run_until(SimTime::from_secs(120.0));
        assert_eq!(summary.delivered_pairs, 1);
        assert_eq!(summary.delivery_ratio, 1.0);
    }

    #[test]
    fn uninterested_neighbour_not_flooded() {
        // n1 has no interests at all: S_v = 0 = S_u and not a destination.
        let router = ChitChatRouter::new(2, ChitChatParams::paper_default());
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 3)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
            .message(msg(5.0, 0, vec![Keyword(1)], vec![]))
            .build(router);
        let summary = sim.run_until(SimTime::from_secs(300.0));
        assert_eq!(summary.relays_completed, 0, "no reason to forward");
    }

    #[test]
    fn two_hop_delivery_through_relay() {
        // n0 — n1 — n2 in a chain; n1 bridges (never in range of both rule:
        // n0<->n1 and n1<->n2 in range, n0<->n2 not). n2 subscribes kw1, and
        // n1 acquires transient interest from n2, raising S_1 above S_0.
        let mut router = ChitChatRouter::new(3, ChitChatParams::paper_default());
        router.subscribe(NodeId(2), [Keyword(1)]);
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 3)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(90.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(180.0, 0.0))))
            .message(msg(120.0, 0, vec![Keyword(1)], vec![NodeId(2)]))
            .build(router);
        let summary = sim.run_until(SimTime::from_secs(1800.0));
        assert_eq!(
            summary.delivered_pairs, 1,
            "chain delivery via transient interest"
        );
        assert!(summary.relays_completed >= 2);
    }

    #[test]
    fn tables_acquire_transient_interests_on_contact() {
        let mut router = ChitChatRouter::new(2, ChitChatParams::paper_default());
        router.subscribe(NodeId(0), [Keyword(7)]);
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 3)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
            .build(router);
        let _ = sim.run_until(SimTime::from_secs(600.0));
        let w = sim.protocol().table(NodeId(1)).weight(Keyword(7));
        assert!(w > 0.0, "n1 acquired kw7 transiently, weight {w}");
        assert!(!sim.protocol().table(NodeId(1)).is_direct(Keyword(7)));
    }

    #[test]
    fn delivery_not_duplicated_per_destination() {
        let mut router = ChitChatRouter::new(2, ChitChatParams::paper_default());
        router.subscribe(NodeId(1), [Keyword(1)]);
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 3)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
            .message(msg(5.0, 0, vec![Keyword(1)], vec![NodeId(1)]))
            .build(router);
        let summary = sim.run_until(SimTime::from_secs(3600.0));
        assert_eq!(summary.delivered_pairs, 1);
        assert_eq!(summary.relays_completed, 1, "no re-sends after delivery");
    }
}
