//! Classic node-centric DTN routing baselines.
//!
//! These are the flooding/forwarding families the thesis surveys in §1.1:
//!
//! * [`EpidemicRouter`] — replicate everything to everyone (Vahdat &
//!   Becker, 2000): the delivery-ratio ceiling and the traffic worst case.
//! * [`DirectDeliveryRouter`] — the source hands the message only to
//!   destinations it meets itself: the traffic floor.
//! * [`SprayAndWaitRouter`] — binary Spray-and-Wait (Spyropoulos et al.):
//!   a bounded number of copies is "sprayed", then each copy waits for a
//!   direct meeting with a destination.
//! * [`TwoHopRelayRouter`] — the source sprays to relays; relays forward
//!   only to destinations (at most two hops source→relay→destination).
//!
//! All four share the delivery criterion of the data-centric experiments: a
//! node is a destination for a message iff it holds a direct interest
//! (registered in an [`InterestDirectory`]) in one of the message's tags.

use std::collections::HashMap;

use dtn_sim::buffer::InsertOutcome;
use dtn_sim::kernel::SimApi;
use dtn_sim::message::MessageId;
use dtn_sim::protocol::{Protocol, Reception};
use dtn_sim::world::NodeId;

use crate::directory::InterestDirectory;

/// Shared helper: is `node` a destination for `message` per the directory?
fn is_destination(api: &SimApi, dir: &InterestDirectory, node: NodeId, id: MessageId) -> bool {
    // Baselines treat messages as black boxes; their tag set never changes,
    // so the body's ground-truth-derived source tags suffice. We read the
    // keywords off whichever copy we can see, falling back to none.
    api.buffer(node)
        .get(id)
        .map(|c| dir.is_destination(node, &c.keywords()))
        .unwrap_or(false)
}

/// Epidemic routing: on contact, push every message the peer lacks.
#[derive(Debug)]
pub struct EpidemicRouter {
    directory: InterestDirectory,
}

impl EpidemicRouter {
    /// Creates the router over a fixed interest directory.
    #[must_use]
    pub fn new(directory: InterestDirectory) -> Self {
        EpidemicRouter { directory }
    }

    /// The interest directory.
    #[must_use]
    pub fn directory(&self) -> &InterestDirectory {
        &self.directory
    }

    fn push_all(&self, api: &mut SimApi, from: NodeId, to: NodeId) {
        for id in api.buffer(from).ids_sorted() {
            if !api.buffer(to).contains(id) && !api.is_sending(from, to, id) {
                api.send(from, to, id);
            }
        }
    }
}

impl Protocol for EpidemicRouter {
    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        self.push_all(api, a, b);
        self.push_all(api, b, a);
    }

    fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
        for peer in api.peers_of(node) {
            if !api.buffer(peer).contains(message) {
                api.send(node, peer, message);
            }
        }
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
        let to = r.transfer.to;
        let id = r.transfer.message;
        if !matches!(r.outcome, InsertOutcome::Stored { .. }) {
            return;
        }
        if is_destination(api, &self.directory, to, id) {
            api.mark_delivered(to, id);
        }
        for peer in api.peers_of(to) {
            if !api.buffer(peer).contains(id) && !api.is_sending(to, peer, id) {
                api.send(to, peer, id);
            }
        }
    }
}

/// Direct delivery: the source keeps the message until it meets a
/// destination itself.
#[derive(Debug)]
pub struct DirectDeliveryRouter {
    directory: InterestDirectory,
}

impl DirectDeliveryRouter {
    /// Creates the router over a fixed interest directory.
    #[must_use]
    pub fn new(directory: InterestDirectory) -> Self {
        DirectDeliveryRouter { directory }
    }

    fn offer_to_destinations(&self, api: &mut SimApi, holder: NodeId, peer: NodeId) {
        for id in api.buffer(holder).ids_sorted() {
            let Some(copy) = api.buffer(holder).get(id) else {
                continue;
            };
            // Only the source carries in this scheme.
            if copy.body.source != holder {
                continue;
            }
            let keywords = copy.keywords();
            if self.directory.is_destination(peer, &keywords)
                && !api.buffer(peer).contains(id)
                && !api.is_delivered(peer, id)
            {
                api.send(holder, peer, id);
            }
        }
    }
}

impl Protocol for DirectDeliveryRouter {
    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        self.offer_to_destinations(api, a, b);
        self.offer_to_destinations(api, b, a);
    }

    fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
        let _ = message;
        let peers = api.peers_of(node);
        for peer in peers {
            self.offer_to_destinations(api, node, peer);
        }
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
        if matches!(r.outcome, InsertOutcome::Stored { .. }) {
            api.mark_delivered(r.transfer.to, r.transfer.message);
        }
    }
}

/// Binary Spray-and-Wait with `initial_copies` tickets per message.
///
/// In the spray phase a node holding `c > 1` tickets hands ⌈c/2⌉ to the
/// encountered node; with one ticket it waits and delivers only to
/// destinations directly.
#[derive(Debug)]
pub struct SprayAndWaitRouter {
    directory: InterestDirectory,
    initial_copies: u32,
    /// Tickets held per (node, message).
    tickets: HashMap<(NodeId, MessageId), u32>,
    /// Ticket grants decided at send time, applied when the copy lands.
    pending_grants: HashMap<(NodeId, NodeId, MessageId), u32>,
}

impl SprayAndWaitRouter {
    /// Creates the router with `initial_copies` tickets per new message.
    ///
    /// # Panics
    ///
    /// Panics if `initial_copies` is zero.
    #[must_use]
    pub fn new(directory: InterestDirectory, initial_copies: u32) -> Self {
        assert!(initial_copies > 0, "spray needs at least one copy");
        SprayAndWaitRouter {
            directory,
            initial_copies,
            tickets: HashMap::new(),
            pending_grants: HashMap::new(),
        }
    }

    /// Tickets currently held by `node` for `message`.
    #[must_use]
    pub fn tickets(&self, node: NodeId, message: MessageId) -> u32 {
        self.tickets.get(&(node, message)).copied().unwrap_or(0)
    }

    fn offer(&mut self, api: &mut SimApi, from: NodeId, to: NodeId) {
        for id in api.buffer(from).ids_sorted() {
            if api.buffer(to).contains(id) || api.is_sending(from, to, id) {
                continue;
            }
            let Some(copy) = api.buffer(from).get(id) else {
                continue;
            };
            let keywords = copy.keywords();
            let dest = self.directory.is_destination(to, &keywords);
            let have = self.tickets(from, id);
            if dest && !api.is_delivered(to, id) {
                // Delivery does not consume spray tickets.
                if api.send(from, to, id) {
                    self.pending_grants.insert((from, to, id), 0);
                }
            } else if !dest && have > 1 {
                let grant = have.div_ceil(2);
                if api.send(from, to, id) {
                    self.tickets.insert((from, id), have - grant);
                    self.pending_grants.insert((from, to, id), grant);
                }
            }
        }
    }
}

impl Protocol for SprayAndWaitRouter {
    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        self.offer(api, a, b);
        self.offer(api, b, a);
    }

    fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
        self.tickets.insert((node, message), self.initial_copies);
        for peer in api.peers_of(node) {
            self.offer(api, node, peer);
        }
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
        let (from, to, id) = (r.transfer.from, r.transfer.to, r.transfer.message);
        let grant = self.pending_grants.remove(&(from, to, id)).unwrap_or(0);
        if !matches!(r.outcome, InsertOutcome::Stored { .. }) {
            // Copy rejected: the sender keeps its tickets.
            *self.tickets.entry((from, id)).or_insert(0) += grant;
            return;
        }
        if grant > 0 {
            *self.tickets.entry((to, id)).or_insert(0) += grant;
        }
        if is_destination(api, &self.directory, to, id) {
            api.mark_delivered(to, id);
        }
        // The fresh copy may be sprayable / deliverable to current peers.
        for peer in api.peers_of(to) {
            self.offer(api, to, peer);
        }
    }

    fn on_transfer_aborted(
        &mut self,
        api: &mut SimApi,
        aborted: &dtn_sim::transfer::AbortedTransfer,
    ) {
        let _ = api;
        // Refund tickets reserved for the failed hand-off.
        let key = (aborted.from, aborted.to, aborted.message);
        if let Some(grant) = self.pending_grants.remove(&key) {
            *self
                .tickets
                .entry((aborted.from, aborted.message))
                .or_insert(0) += grant;
        }
    }

    fn on_expired(&mut self, api: &mut SimApi, node: NodeId, messages: &[MessageId]) {
        let _ = api;
        // A purged copy's tickets die with it; a later re-reception must
        // start from the fresh grant, not resurrect stale ones.
        for &m in messages {
            self.tickets.remove(&(node, m));
        }
    }

    fn on_evicted(&mut self, api: &mut SimApi, node: NodeId, messages: &[MessageId]) {
        self.on_expired(api, node, messages);
    }
}

/// Two-hop relay: the source gives copies to any relay; relays hand them
/// only to destinations.
#[derive(Debug)]
pub struct TwoHopRelayRouter {
    directory: InterestDirectory,
}

impl TwoHopRelayRouter {
    /// Creates the router over a fixed interest directory.
    #[must_use]
    pub fn new(directory: InterestDirectory) -> Self {
        TwoHopRelayRouter { directory }
    }

    fn offer(&self, api: &mut SimApi, from: NodeId, to: NodeId) {
        for id in api.buffer(from).ids_sorted() {
            if api.buffer(to).contains(id) || api.is_sending(from, to, id) {
                continue;
            }
            let Some(copy) = api.buffer(from).get(id) else {
                continue;
            };
            let keywords = copy.keywords();
            let dest = self.directory.is_destination(to, &keywords);
            let holder_is_source = copy.body.source == from;
            if dest && !api.is_delivered(to, id) {
                api.send(from, to, id);
            } else if !dest && holder_is_source {
                // Source sprays to relays; relays never re-spray.
                api.send(from, to, id);
            }
        }
    }
}

impl Protocol for TwoHopRelayRouter {
    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        self.offer(api, a, b);
        self.offer(api, b, a);
    }

    fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
        let _ = message;
        for peer in api.peers_of(node) {
            self.offer(api, node, peer);
        }
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
        if !matches!(r.outcome, InsertOutcome::Stored { .. }) {
            return;
        }
        let to = r.transfer.to;
        if is_destination(api, &self.directory, to, r.transfer.message) {
            api.mark_delivered(to, r.transfer.message);
        }
        // A relay that just received a copy may be facing the destination.
        for peer in api.peers_of(to) {
            self.offer(api, to, peer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::geometry::{Area, Point};
    use dtn_sim::kernel::{ScheduledMessage, SimulationBuilder};
    use dtn_sim::message::{Keyword, Priority, Quality};
    use dtn_sim::mobility::ScriptedWaypoints;
    use dtn_sim::time::SimTime;

    fn msg(at: f64, source: u32, expected: Vec<NodeId>) -> ScheduledMessage {
        ScheduledMessage {
            at: SimTime::from_secs(at),
            source: NodeId(source),
            size_bytes: 10_000,
            ttl_secs: 100_000.0,
            priority: Priority::High,
            quality: Quality::new(0.9),
            ground_truth: vec![Keyword(1)],
            source_tags: vec![Keyword(1)],
            expected_destinations: expected,
        }
    }

    /// A 3-node chain: n0 at x=0, n1 at x=90, n2 at x=180 (range 100 m).
    fn chain_sim<P: Protocol>(protocol: P) -> dtn_sim::kernel::Simulation<P> {
        SimulationBuilder::new(Area::new(1000.0, 1000.0), 5)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(90.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(180.0, 0.0))))
            .message(msg(5.0, 0, vec![NodeId(2)]))
            .build(protocol)
    }

    fn dir_with_dest2() -> InterestDirectory {
        let mut d = InterestDirectory::new(3);
        d.subscribe(NodeId(2), [Keyword(1)]);
        d
    }

    #[test]
    fn epidemic_floods_the_chain() {
        let mut sim = chain_sim(EpidemicRouter::new(dir_with_dest2()));
        let summary = sim.run_until(SimTime::from_secs(300.0));
        assert_eq!(summary.delivered_pairs, 1, "epidemic reaches n2 via n1");
        assert_eq!(summary.relays_completed, 2, "two hops of traffic");
    }

    #[test]
    fn direct_delivery_cannot_cross_the_gap() {
        let mut sim = chain_sim(DirectDeliveryRouter::new(dir_with_dest2()));
        let summary = sim.run_until(SimTime::from_secs(300.0));
        assert_eq!(summary.delivered_pairs, 0, "n0 never meets n2");
        assert_eq!(summary.relays_completed, 0);
    }

    #[test]
    fn direct_delivery_works_when_adjacent() {
        let mut d = InterestDirectory::new(3);
        d.subscribe(NodeId(1), [Keyword(1)]);
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 5)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(
                800.0, 800.0,
            ))))
            .message(msg(5.0, 0, vec![NodeId(1)]))
            .build(DirectDeliveryRouter::new(d));
        let summary = sim.run_until(SimTime::from_secs(300.0));
        assert_eq!(summary.delivered_pairs, 1);
        assert_eq!(summary.relays_completed, 1, "exactly one transmission");
    }

    #[test]
    fn spray_and_wait_crosses_with_relay() {
        let mut sim = chain_sim(SprayAndWaitRouter::new(dir_with_dest2(), 4));
        let summary = sim.run_until(SimTime::from_secs(300.0));
        assert_eq!(summary.delivered_pairs, 1);
        // Source sprayed to n1 (grant 2) and n1 delivered to n2.
        assert_eq!(summary.relays_completed, 2);
    }

    #[test]
    fn spray_tickets_split_binary() {
        let mut sim = chain_sim(SprayAndWaitRouter::new(dir_with_dest2(), 8));
        let _ = sim.run_until(SimTime::from_secs(300.0));
        let router = sim.protocol();
        let id = dtn_sim::message::MessageId(0);
        assert_eq!(router.tickets(NodeId(0), id), 4, "source keeps half");
        assert_eq!(router.tickets(NodeId(1), id), 4, "relay granted half");
    }

    #[test]
    fn spray_with_one_ticket_waits() {
        // Initial copies = 1: the source must deliver directly, so the gap
        // to n2 is never crossed.
        let mut sim = chain_sim(SprayAndWaitRouter::new(dir_with_dest2(), 1));
        let summary = sim.run_until(SimTime::from_secs(300.0));
        assert_eq!(summary.delivered_pairs, 0);
        assert_eq!(summary.relays_completed, 0);
    }

    #[test]
    fn two_hop_delivers_over_exactly_two_hops() {
        let mut sim = chain_sim(TwoHopRelayRouter::new(dir_with_dest2()));
        let summary = sim.run_until(SimTime::from_secs(300.0));
        assert_eq!(summary.delivered_pairs, 1);
        assert_eq!(summary.relays_completed, 2);
    }

    #[test]
    fn two_hop_does_not_reach_three_hops() {
        // Chain of 4: n0..n3, destination at n3 — needs 3 hops, two-hop fails.
        let mut d = InterestDirectory::new(4);
        d.subscribe(NodeId(3), [Keyword(1)]);
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 5)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(90.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(180.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(270.0, 0.0))))
            .message(msg(5.0, 0, vec![NodeId(3)]))
            .build(TwoHopRelayRouter::new(d));
        let summary = sim.run_until(SimTime::from_secs(600.0));
        assert_eq!(summary.delivered_pairs, 0, "three hops needed, two allowed");
    }
}
