//! CEDO — Content-centric Dissemination algorithm for delay-tolerant
//! networks (Neves dos Santos et al., MSWiM 2013), summarized in the
//! thesis §1.2.
//!
//! CEDO is the *other* data-centric scheme the thesis positions ChitChat
//! against: nodes issue **requests** for content keywords at random times;
//! a request carries a TTL and is flooded opportunistically; when a node
//! holding a matching message meets a requester (or a carrier of its
//! request), the content flows back. Our rendering keeps the essential
//! mechanics the thesis describes:
//!
//! * requests are keyword-based with a TTL, spread epidemically between
//!   nodes, and expire everywhere once the TTL lapses;
//! * a node `m` that meets node `n` retrieves from `n` any buffered
//!   message matching one of `m`'s live requests (pull), and pushes to
//!   `n` any message matching a request `n` is known to carry (proxy
//!   fetch), so content gravitates toward requesters.

use std::collections::HashMap;

use dtn_sim::buffer::InsertOutcome;
use dtn_sim::kernel::SimApi;
use dtn_sim::message::{Keyword, MessageId};
use dtn_sim::protocol::{Protocol, Reception};
use dtn_sim::time::SimTime;
use dtn_sim::world::NodeId;

/// A live content request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// The node that wants the content.
    pub requester: NodeId,
    /// The keyword requested.
    pub keyword: Keyword,
    /// When the request lapses network-wide.
    pub expires_at: SimTime,
}

/// The CEDO router.
#[derive(Debug)]
pub struct CedoRouter {
    /// Per-node view of live requests, keyed by `(requester, keyword)`.
    known_requests: Vec<HashMap<(NodeId, Keyword), SimTime>>,
    /// Requests scheduled by the workload: `(time, requester, keyword,
    /// ttl_secs)`, sorted ascending by time.
    schedule: Vec<(SimTime, NodeId, Keyword, f64)>,
    next_scheduled: usize,
    /// Currently-active contacts, keyed by normalized pair, valued by
    /// the last serve time — re-served periodically (a request issued
    /// mid-contact must still spread over that contact).
    last_serve: HashMap<(NodeId, NodeId), SimTime>,
    /// Reusable due-pair buffer for the periodic re-serve scan.
    due_scratch: Vec<((NodeId, NodeId), f64)>,
}

impl CedoRouter {
    /// Creates a router for `node_count` nodes.
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        CedoRouter {
            known_requests: vec![HashMap::new(); node_count],
            schedule: Vec::new(),
            next_scheduled: 0,
            last_serve: HashMap::new(),
            due_scratch: Vec::new(),
        }
    }

    /// Schedules a request: `requester` asks for `keyword` at `at`, valid
    /// for `ttl_secs`.
    pub fn schedule_request(
        &mut self,
        at: SimTime,
        requester: NodeId,
        keyword: Keyword,
        ttl_secs: f64,
    ) {
        self.schedule.push((at, requester, keyword, ttl_secs));
        self.schedule
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    }

    /// Live requests currently known to `node`.
    #[must_use]
    pub fn known_request_count(&self, node: NodeId) -> usize {
        self.known_requests[node.index()].len()
    }

    /// Whether `node` currently knows of a live request by `requester`
    /// for `keyword`.
    #[must_use]
    pub fn knows_request(&self, node: NodeId, requester: NodeId, keyword: Keyword) -> bool {
        self.known_requests[node.index()].contains_key(&(requester, keyword))
    }

    fn release_due(&mut self, now: SimTime) {
        while self.next_scheduled < self.schedule.len()
            && self.schedule[self.next_scheduled].0 <= now
        {
            let (at, requester, keyword, ttl) = self.schedule[self.next_scheduled];
            self.next_scheduled += 1;
            self.known_requests[requester.index()].insert(
                (requester, keyword),
                at + dtn_sim::time::SimDuration::from_secs(ttl),
            );
        }
    }

    fn expire(&mut self, now: SimTime) {
        for table in &mut self.known_requests {
            table.retain(|_, &mut expiry| expiry > now);
        }
    }

    /// Exchanges request tables and serves matches, both directions.
    fn serve_pair(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        // Epidemic spread of request entries.
        let merged: Vec<((NodeId, Keyword), SimTime)> = {
            let mut all: HashMap<(NodeId, Keyword), SimTime> =
                self.known_requests[a.index()].clone();
            for (&k, &v) in &self.known_requests[b.index()] {
                let e = all.entry(k).or_insert(v);
                if v > *e {
                    *e = v;
                }
            }
            let mut v: Vec<_> = all.into_iter().collect();
            v.sort_by_key(|x| x.0);
            v
        };
        for node in [a, b] {
            self.known_requests[node.index()] = merged.iter().copied().collect();
        }
        // Serve: for each direction, send messages matching any live
        // request the peer cares about (its own, or ones it proxies).
        for (from, to) in [(a, b), (b, a)] {
            for id in api.buffer(from).ids_sorted() {
                if api.buffer(to).contains(id) || api.is_sending(from, to, id) {
                    continue;
                }
                let Some(copy) = api.buffer(from).get(id) else {
                    continue;
                };
                let keywords = copy.keywords();
                let wanted = merged.iter().any(|((requester, kw), _)| {
                    keywords.contains(kw) && (*requester == to || !api.buffer(to).contains(id))
                });
                if wanted {
                    api.send(from, to, id);
                }
            }
        }
    }
}

impl Protocol for CedoRouter {
    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        let now = api.now();
        let key = dtn_sim::world::ordered_pair(a, b);
        self.last_serve.insert(key, now);
        self.release_due(now);
        self.expire(now);
        self.serve_pair(api, a, b);
    }

    fn on_contact_down(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        let _ = api;
        let key = dtn_sim::world::ordered_pair(a, b);
        self.last_serve.remove(&key);
    }

    fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
        let _ = message;
        let now = api.now();
        self.release_due(now);
        for peer in api.peers_of(node) {
            self.serve_pair(api, node, peer);
        }
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
        let to = r.transfer.to;
        let id = r.transfer.message;
        if !matches!(r.outcome, InsertOutcome::Stored { .. }) {
            return;
        }
        // Delivery: the receiver had a live request matching the content.
        let keywords = api
            .buffer(to)
            .get(id)
            .map(|c| c.keywords())
            .unwrap_or_default();
        let now = api.now();
        let is_requested = self.known_requests[to.index()]
            .iter()
            .any(|((req, kw), &exp)| *req == to && exp > now && keywords.contains(kw));
        if is_requested {
            api.mark_delivered(to, id);
        }
        for peer in api.peers_of(to) {
            self.serve_pair(api, to, peer);
        }
    }

    fn on_tick(&mut self, api: &mut SimApi) {
        let now = api.now();
        self.release_due(now);
        // Lazy expiry once a minute keeps tables tidy without per-step cost.
        if (now.as_secs() as u64).is_multiple_of(60) {
            self.expire(now);
        }
        // Re-serve long-lived contacts every 30 s so requests issued after
        // contact-up still spread and get served. The due rows go through
        // a reusable scratch vector rather than a fresh allocation per
        // tick.
        let mut due = std::mem::take(&mut self.due_scratch);
        crate::exchange::due_pairs_into(&self.last_serve, now, 30.0, &mut due);
        for &((a, b), _) in &due {
            self.last_serve.insert((a, b), now);
            self.serve_pair(api, a, b);
        }
        self.due_scratch = due;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::geometry::{Area, Point};
    use dtn_sim::kernel::{ScheduledMessage, SimulationBuilder};
    use dtn_sim::message::{Priority, Quality};
    use dtn_sim::mobility::ScriptedWaypoints;

    fn msg(at: f64, source: u32, kw: u32, expected: Vec<NodeId>) -> ScheduledMessage {
        ScheduledMessage {
            at: SimTime::from_secs(at),
            source: NodeId(source),
            size_bytes: 10_000,
            ttl_secs: 100_000.0,
            priority: Priority::High,
            quality: Quality::new(0.9),
            ground_truth: vec![Keyword(kw)],
            source_tags: vec![Keyword(kw)],
            expected_destinations: expected,
        }
    }

    #[test]
    fn requester_pulls_matching_content() {
        let mut router = CedoRouter::new(2);
        router.schedule_request(SimTime::from_secs(1.0), NodeId(1), Keyword(5), 10_000.0);
        let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
            .message(msg(10.0, 0, 5, vec![NodeId(1)]))
            .build(router);
        let summary = sim.run_until(SimTime::from_secs(300.0));
        assert_eq!(summary.delivered_pairs, 1, "request served");
    }

    #[test]
    fn unrequested_content_stays_put() {
        let mut router = CedoRouter::new(2);
        router.schedule_request(SimTime::from_secs(1.0), NodeId(1), Keyword(9), 10_000.0);
        let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
            .message(msg(10.0, 0, 5, vec![]))
            .build(router);
        let summary = sim.run_until(SimTime::from_secs(300.0));
        assert_eq!(
            summary.relays_completed, 0,
            "keyword mismatch → no transfer"
        );
    }

    #[test]
    fn expired_requests_are_not_served() {
        let mut router = CedoRouter::new(2);
        router.schedule_request(SimTime::from_secs(1.0), NodeId(1), Keyword(5), 5.0);
        let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
            // Content appears long after the request TTL lapsed.
            .message(msg(120.0, 0, 5, vec![NodeId(1)]))
            .build(router);
        let summary = sim.run_until(SimTime::from_secs(300.0));
        assert_eq!(
            summary.delivered_pairs, 0,
            "request expired before content existed"
        );
    }

    #[test]
    fn requests_propagate_through_relays() {
        // Chain: requester n2 — relay n1 — content holder n0. n0 never
        // meets n2 but learns of the request via n1 and serves through it.
        let mut router = CedoRouter::new(3);
        router.schedule_request(SimTime::from_secs(1.0), NodeId(2), Keyword(5), 100_000.0);
        let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 1)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(90.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(180.0, 0.0))))
            .message(msg(30.0, 0, 5, vec![NodeId(2)]))
            .build(router);
        let summary = sim.run_until(SimTime::from_secs(600.0));
        assert_eq!(summary.delivered_pairs, 1, "content crossed the chain");
        let router = sim.protocol();
        assert!(router.knows_request(NodeId(0), NodeId(2), Keyword(5)));
    }
}
