//! The figure suite as a library: one submodule per experiment, each
//! exposing the figure's sweep as executor [`Cell`]s plus a `run`
//! function that prints the table/CSV exactly as the standalone binary
//! does.
//!
//! Splitting "what cells does this figure need" from "how does it format
//! them" is what lets the `all` driver prefetch the *union* of every
//! figure's cells through one saturated worker pool ([`suite_cells`] →
//! [`dtn_workloads::sweep::run_cells`]) and then render each figure from
//! the warm memo — and it is why conditions shared between figures (the
//! Fig. 5.1/5.2 selfish sweep, Fig. 5.3's ×1.0-endowment column) simulate
//! once instead of once per figure.
//!
//! Every scenario is routed through [`Cli::prep`] so smoke mode reshapes
//! prefetch cells and formatting cells identically — their cache keys must
//! agree or the prefetch is wasted.

use crate::Cli;
use dtn_workloads::scenario::Scenario;
use dtn_workloads::sweep::{run_cells, Cell};

/// Cross product of scenarios × arms × seeds as executor cells.
fn arm_cells(
    scenarios: &[Scenario],
    arms: &[dtn_workloads::scenario::Arm],
    seeds: &[u64],
) -> Vec<Cell> {
    scenarios
        .iter()
        .flat_map(|s| {
            arms.iter().flat_map(move |&arm| {
                seeds
                    .iter()
                    .map(move |&seed| Cell::arm(s.clone(), arm, seed))
            })
        })
        .collect()
}

/// The union of every figure's cells — the `all` driver's prefetch plan.
/// Duplicate conditions across figures collapse inside the executor (same
/// cache key), so the union is cheaper than the sum of its parts.
#[must_use]
pub fn suite_cells(cli: &Cli) -> Vec<Cell> {
    let mut cells = Vec::new();
    cells.extend(fig5_1::cells(cli));
    cells.extend(fig5_2::cells(cli));
    cells.extend(fig5_3::cells(cli));
    cells.extend(fig5_4::cells(cli));
    cells.extend(fig5_5::cells(cli));
    cells.extend(fig5_6::cells(cli));
    cells.extend(ablation::cells(cli));
    cells.extend(baselines::cells(cli));
    cells.extend(lifetime::cells(cli));
    cells.extend(matrix::cells(cli));
    cells.extend(loss::cells(cli));
    cells.extend(adversary::cells(cli));
    cells
}

/// Runs the whole evaluation in-process: one union prefetch through the
/// executor, then every figure renders from the warm memo.
pub fn run_all(cli: &Cli) {
    let plan = suite_cells(cli);
    println!(
        "[sweep] prefetching {} cells across {} worker(s)...",
        plan.len(),
        dtn_workloads::sweep::workers()
    );
    let _ = run_cells(&plan);
    let m = dtn_workloads::sweep::metrics();
    println!(
        "[sweep] prefetch done: {} run, {} cache hits ({} from disk)",
        m.cells_run, m.cache_hits, m.disk_hits
    );
    type FigureEntry = (&'static str, fn(&Cli));
    let figures: [FigureEntry; 12] = [
        ("fig5_1", fig5_1::run),
        ("fig5_2", fig5_2::run),
        ("fig5_3", fig5_3::run),
        ("fig5_4", fig5_4::run),
        ("fig5_5", fig5_5::run),
        ("fig5_6", fig5_6::run),
        ("ablation", ablation::run),
        ("baselines", baselines::run),
        ("lifetime", lifetime::run),
        ("matrix", matrix::run),
        ("loss", loss::run),
        ("adversary", adversary::run),
    ];
    for (name, run) in figures {
        println!("\n##### {name} #####\n");
        run(cli);
    }
}

/// Fig. 5.1 — MDR vs percentage of selfish nodes, both arms.
pub mod fig5_1 {
    use super::*;
    use crate::{print_scenario_header, write_csv};
    use dtn_workloads::dispersion::run_seeds_detailed;
    use dtn_workloads::paper::selfish_sweep;
    use dtn_workloads::scenario::Arm;

    /// The figure's sweep scenarios (smoke-prepped).
    fn sweep(cli: &Cli) -> Vec<Scenario> {
        selfish_sweep(cli.scale)
            .into_iter()
            .map(|s| cli.prep(s))
            .collect()
    }

    /// Executor cells: selfish sweep × both arms × seeds.
    #[must_use]
    pub fn cells(cli: &Cli) -> Vec<Cell> {
        arm_cells(&sweep(cli), &Arm::BOTH, &cli.seeds)
    }

    /// Prints the table and writes `results/fig5_1.csv`.
    pub fn run(cli: &Cli) {
        let sweep = sweep(cli);
        let _ = run_cells(&cells(cli));
        print_scenario_header(
            "Fig 5.1 — MDR vs percentage of selfish nodes",
            &sweep[0],
            &cli.seeds,
        );
        println!(
            "{:>9} | {:>17} | {:>17} | {:>9}",
            "selfish %", "Incentive MDR", "ChitChat MDR", "gap"
        );
        println!("{}", "-".repeat(63));
        let mut rows = Vec::new();
        for scenario in &sweep {
            let pct = (scenario.selfish_fraction * 100.0).round();
            let (_, inc) = run_seeds_detailed(scenario, Arm::Incentive, &cli.seeds);
            let (_, cc) = run_seeds_detailed(scenario, Arm::ChitChat, &cli.seeds);
            println!(
                "{:>9} | {:>17} | {:>17} | {:>+9.3}",
                pct,
                inc.delivery_ratio.display(3),
                cc.delivery_ratio.display(3),
                cc.delivery_ratio.mean - inc.delivery_ratio.mean
            );
            rows.push(format!(
                "{pct},{:.6},{:.6},{:.6},{:.6}",
                inc.delivery_ratio.mean,
                inc.delivery_ratio.std_dev,
                cc.delivery_ratio.mean,
                cc.delivery_ratio.std_dev
            ));
        }
        write_csv(
            "fig5_1",
            "selfish_pct,mdr_incentive,sd_incentive,mdr_chitchat,sd_chitchat",
            &rows,
        );
    }
}

/// Fig. 5.2 — percentage of reduced traffic over ChitChat.
pub mod fig5_2 {
    use super::*;
    use crate::{print_scenario_header, write_csv};
    use dtn_workloads::paper::selfish_sweep;
    use dtn_workloads::runner::compare_arms;
    use dtn_workloads::scenario::Arm;

    fn sweep(cli: &Cli) -> Vec<Scenario> {
        selfish_sweep(cli.scale)
            .into_iter()
            .map(|s| cli.prep(s))
            .collect()
    }

    /// Executor cells — identical conditions to Fig. 5.1, so in a
    /// combined run the cache collapses the two figures into one sweep.
    #[must_use]
    pub fn cells(cli: &Cli) -> Vec<Cell> {
        arm_cells(&sweep(cli), &Arm::BOTH, &cli.seeds)
    }

    /// Prints the table and writes `results/fig5_2.csv`.
    pub fn run(cli: &Cli) {
        let sweep = sweep(cli);
        let _ = run_cells(&cells(cli));
        print_scenario_header(
            "Fig 5.2 — % of reduced traffic over ChitChat vs selfish nodes",
            &sweep[0],
            &cli.seeds,
        );
        println!(
            "{:>9} | {:>15} | {:>15} | {:>11}",
            "selfish %", "Incentive relays", "ChitChat relays", "reduction %"
        );
        println!("{}", "-".repeat(60));
        let mut rows = Vec::new();
        for scenario in &sweep {
            let pct = (scenario.selfish_fraction * 100.0).round();
            let cmp = compare_arms(scenario, &cli.seeds);
            println!(
                "{:>9} | {:>15} | {:>15} | {:>+11.1}",
                pct,
                cmp.incentive.relays_completed,
                cmp.chitchat.relays_completed,
                cmp.traffic_reduction_pct()
            );
            rows.push(format!(
                "{pct},{},{},{:.4}",
                cmp.incentive.relays_completed,
                cmp.chitchat.relays_completed,
                cmp.traffic_reduction_pct()
            ));
        }
        write_csv(
            "fig5_2",
            "selfish_pct,relays_incentive,relays_chitchat,reduction_pct",
            &rows,
        );
    }
}

/// Fig. 5.3 — MDR vs selfish % under several initial token endowments.
pub mod fig5_3 {
    use super::*;
    use crate::{print_scenario_header, write_csv};
    use dtn_workloads::paper::token_sweep;
    use dtn_workloads::runner::run_seeds;
    use dtn_workloads::scenario::Arm;

    fn sweep(cli: &Cli) -> Vec<(f64, Vec<Scenario>)> {
        token_sweep(cli.scale)
            .into_iter()
            .map(|(tokens, scenarios)| {
                (tokens, scenarios.into_iter().map(|s| cli.prep(s)).collect())
            })
            .collect()
    }

    /// Executor cells: every endowment column × incentive arm × seeds.
    #[must_use]
    pub fn cells(cli: &Cli) -> Vec<Cell> {
        sweep(cli)
            .iter()
            .flat_map(|(_, scenarios)| arm_cells(scenarios, &[Arm::Incentive], &cli.seeds))
            .collect()
    }

    /// Prints the table and writes `results/fig5_3.csv`.
    pub fn run(cli: &Cli) {
        let sweep = sweep(cli);
        let _ = run_cells(&cells(cli));
        print_scenario_header(
            "Fig 5.3 — MDR vs selfish % under different initial token endowments",
            &sweep[0].1[0],
            &cli.seeds,
        );
        let header: Vec<String> = sweep
            .iter()
            .map(|(tokens, _)| format!("{tokens:>7.0} tok"))
            .collect();
        println!("{:>9} | {}", "selfish %", header.join(" | "));
        println!("{}", "-".repeat(12 + 14 * sweep.len()));

        let points = sweep[0].1.len();
        let mut rows = Vec::new();
        for idx in 0..points {
            let pct = (sweep[0].1[idx].selfish_fraction * 100.0).round();
            let mut cells = Vec::new();
            let mut csv = format!("{pct}");
            for (_, scenarios) in &sweep {
                let summary = run_seeds(&scenarios[idx], Arm::Incentive, &cli.seeds);
                cells.push(format!("{:>11.3}", summary.delivery_ratio));
                csv.push_str(&format!(",{:.6}", summary.delivery_ratio));
            }
            println!("{pct:>9} | {}", cells.join(" | "));
            rows.push(csv);
        }
        let csv_header = std::iter::once("selfish_pct".to_owned())
            .chain(sweep.iter().map(|(t, _)| format!("mdr_tokens_{t:.0}")))
            .collect::<Vec<_>>()
            .join(",");
        write_csv("fig5_3", &csv_header, &rows);
    }
}

/// Fig. 5.4 — average rating of malicious nodes vs time.
pub mod fig5_4 {
    use super::*;
    use crate::{ascii_chart, print_scenario_header, write_csv};
    use dtn_core::protocol::MALICIOUS_RATING_SERIES;
    use dtn_workloads::paper::malicious_sweep;
    use dtn_workloads::runner::run_seeds;
    use dtn_workloads::scenario::Arm;

    fn sweep(cli: &Cli) -> Vec<Scenario> {
        malicious_sweep(cli.scale)
            .into_iter()
            .map(|s| cli.prep(s))
            .collect()
    }

    /// Executor cells: malicious sweep × incentive arm × seeds.
    #[must_use]
    pub fn cells(cli: &Cli) -> Vec<Cell> {
        arm_cells(&sweep(cli), &[Arm::Incentive], &cli.seeds)
    }

    /// Prints the table + ASCII charts and writes `results/fig5_4.csv`.
    pub fn run(cli: &Cli) {
        let sweep = sweep(cli);
        let _ = run_cells(&cells(cli));
        print_scenario_header(
            "Fig 5.4 — average rating of malicious nodes vs time",
            &sweep[0],
            &cli.seeds,
        );

        let mut series_by_pct = Vec::new();
        for scenario in &sweep {
            let pct = (scenario.malicious_fraction * 100.0).round();
            let summary = run_seeds(scenario, Arm::Incentive, &cli.seeds);
            let series = summary
                .series
                .get(MALICIOUS_RATING_SERIES)
                .cloned()
                .unwrap_or_default();
            series_by_pct.push((pct, series));
        }

        // Align on the first series' sample times.
        let times: Vec<f64> = series_by_pct
            .first()
            .map(|(_, s)| s.iter().map(|(t, _)| *t).collect())
            .unwrap_or_default();
        let header: Vec<String> = series_by_pct
            .iter()
            .map(|(pct, _)| format!("{pct:>3.0}% mal"))
            .collect();
        println!("{:>9} | {}", "t (min)", header.join(" | "));
        println!("{}", "-".repeat(12 + 11 * series_by_pct.len()));
        let mut rows = Vec::new();
        for (i, t) in times.iter().enumerate() {
            let mut cells = Vec::new();
            let mut csv = format!("{:.0}", t / 60.0);
            for (_, series) in &series_by_pct {
                let v = series.get(i).map_or(f64::NAN, |(_, v)| *v);
                cells.push(format!("{v:>8.3}"));
                csv.push_str(&format!(",{v:.4}"));
            }
            println!("{:>9.0} | {}", t / 60.0, cells.join(" | "));
            rows.push(csv);
        }
        let csv_header = std::iter::once("t_min".to_owned())
            .chain(
                series_by_pct
                    .iter()
                    .map(|(p, _)| format!("avg_rating_{p:.0}pct")),
            )
            .collect::<Vec<_>>()
            .join(",");
        write_csv("fig5_4", &csv_header, &rows);

        for (pct, series) in &series_by_pct {
            println!("\n{pct:.0}% malicious:");
            print!(
                "{}",
                ascii_chart(
                    series,
                    6,
                    &format!("time → avg rating, {pct:.0}% malicious")
                )
            );
        }
    }
}

/// Fig. 5.5 — MDR vs number of users on a fixed area.
pub mod fig5_5 {
    use super::*;
    use crate::{print_scenario_header, write_csv};
    use dtn_workloads::paper::user_count_sweep;
    use dtn_workloads::runner::compare_arms;
    use dtn_workloads::scenario::Arm;

    fn sweep(cli: &Cli) -> Vec<Scenario> {
        user_count_sweep(cli.scale)
            .into_iter()
            .map(|s| cli.prep(s))
            .collect()
    }

    /// Executor cells: user-count sweep × both arms × seeds.
    #[must_use]
    pub fn cells(cli: &Cli) -> Vec<Cell> {
        arm_cells(&sweep(cli), &Arm::BOTH, &cli.seeds)
    }

    /// Prints the table and writes `results/fig5_5.csv`.
    pub fn run(cli: &Cli) {
        let sweep = sweep(cli);
        let _ = run_cells(&cells(cli));
        print_scenario_header(
            "Fig 5.5 — MDR vs number of users (fixed area)",
            &sweep[0],
            &cli.seeds,
        );
        println!(
            "{:>7} | {:>13} | {:>13} | {:>9}",
            "users", "Incentive MDR", "ChitChat MDR", "gap"
        );
        println!("{}", "-".repeat(53));
        let mut rows = Vec::new();
        for scenario in &sweep {
            let cmp = compare_arms(scenario, &cli.seeds);
            println!(
                "{:>7} | {:>13.3} | {:>13.3} | {:>+9.3}",
                scenario.nodes,
                cmp.incentive.delivery_ratio,
                cmp.chitchat.delivery_ratio,
                cmp.mdr_gap()
            );
            rows.push(format!(
                "{},{:.6},{:.6}",
                scenario.nodes, cmp.incentive.delivery_ratio, cmp.chitchat.delivery_ratio
            ));
        }
        write_csv("fig5_5", "users,mdr_incentive,mdr_chitchat", &rows);
    }
}

/// Fig. 5.6 — priority-segmented MDR at 20% and 40% selfish nodes.
pub mod fig5_6 {
    use super::*;
    use crate::{print_scenario_header, write_csv};
    use dtn_workloads::paper::priority_sweep;
    use dtn_workloads::runner::compare_arms;
    use dtn_workloads::scenario::Arm;

    fn sweep(cli: &Cli) -> Vec<Scenario> {
        priority_sweep(cli.scale)
            .into_iter()
            .map(|s| cli.prep(s))
            .collect()
    }

    /// Executor cells: priority sweep × both arms × seeds.
    #[must_use]
    pub fn cells(cli: &Cli) -> Vec<Cell> {
        arm_cells(&sweep(cli), &Arm::BOTH, &cli.seeds)
    }

    /// Prints the table and writes `results/fig5_6.csv`.
    pub fn run(cli: &Cli) {
        let sweep = sweep(cli);
        let _ = run_cells(&cells(cli));
        print_scenario_header(
            "Fig 5.6 — priority-segmented MDR vs selfish percentage",
            &sweep[0],
            &cli.seeds,
        );
        println!(
            "{:>9} | {:>9} | {:>8} | {:>8} | {:>8}",
            "selfish %", "arm", "high", "medium", "low"
        );
        println!("{}", "-".repeat(55));
        let mut rows = Vec::new();
        for scenario in &sweep {
            let pct = (scenario.selfish_fraction * 100.0).round();
            let cmp = compare_arms(scenario, &cli.seeds);
            for (label, summary) in [("Incentive", &cmp.incentive), ("ChitChat", &cmp.chitchat)] {
                let by = &summary.delivery_ratio_by_priority;
                let get = |level: u8| by.get(&level).copied().unwrap_or(0.0);
                println!(
                    "{:>9} | {:>9} | {:>8.3} | {:>8.3} | {:>8.3}",
                    pct,
                    label,
                    get(1),
                    get(2),
                    get(3)
                );
                rows.push(format!(
                    "{pct},{label},{:.6},{:.6},{:.6}",
                    get(1),
                    get(2),
                    get(3)
                ));
            }
        }
        write_csv(
            "fig5_6",
            "selfish_pct,arm,mdr_high,mdr_medium,mdr_low",
            &rows,
        );
    }
}

/// Ablation study — component contributions at 40% selfish, 10% malicious.
pub mod ablation {
    use super::*;
    use crate::{print_scenario_header, write_csv};
    use dtn_sim::stats::RunSummary;
    use dtn_workloads::scenario::Arm;

    fn base(cli: &Cli) -> Scenario {
        let mut base = cli.scale.base_scenario();
        base.selfish_fraction = 0.4;
        base.malicious_fraction = 0.1;
        cli.prep(base)
    }

    fn variant(base: &Scenario, name: &str, f: impl Fn(&mut Scenario)) -> (String, Scenario) {
        let mut s = base.clone().named(name);
        f(&mut s);
        (name.to_owned(), s)
    }

    fn variants(cli: &Cli) -> Vec<(String, Scenario)> {
        let base = base(cli);
        vec![
            variant(&base, "full", |_| {}),
            variant(&base, "no-drm", |s| s.protocol.drm_enabled = false),
            variant(&base, "no-enrichment", |s| {
                s.protocol.enrichment_enabled = false
            }),
            variant(&base, "no-hardware", |s| {
                s.protocol.hardware_factor_enabled = false;
            }),
        ]
    }

    /// Executor cells: each variant on the incentive arm plus the
    /// everything-off ChitChat baseline, all seeds.
    #[must_use]
    pub fn cells(cli: &Cli) -> Vec<Cell> {
        let mut cells: Vec<Cell> = variants(cli)
            .iter()
            .flat_map(|(_, s)| arm_cells(std::slice::from_ref(s), &[Arm::Incentive], &cli.seeds))
            .collect();
        cells.extend(arm_cells(
            std::slice::from_ref(&base(cli)),
            &[Arm::ChitChat],
            &cli.seeds,
        ));
        cells
    }

    /// Seed-mean of a variant's summaries plus its mean tokens awarded,
    /// pulled from the executor's memoized [`dtn_workloads::sweep::CellResult`]s.
    fn mean_runs(scenario: &Scenario, arm: Arm, seeds: &[u64]) -> (RunSummary, f64) {
        let plan: Vec<Cell> = seeds
            .iter()
            .map(|&seed| Cell::arm(scenario.clone(), arm, seed))
            .collect();
        let results = run_cells(&plan);
        let awarded = results.iter().map(|r| r.tokens_awarded).sum::<f64>() / results.len() as f64;
        let summaries: Vec<RunSummary> = results.into_iter().map(|r| r.summary).collect();
        (RunSummary::mean_of(&summaries), awarded)
    }

    /// Prints the table and writes `results/ablation.csv`.
    pub fn run(cli: &Cli) {
        let base = base(cli);
        let _ = run_cells(&cells(cli));
        print_scenario_header(
            "Ablation — component contributions at 40% selfish, 10% malicious",
            &base,
            &cli.seeds,
        );

        println!(
            "{:>14} | {:>7} | {:>8} | {:>9} | {:>9} | {:>10}",
            "variant", "MDR", "high MDR", "relays", "bonus", "tok moved"
        );
        println!("{}", "-".repeat(72));
        let mut rows = Vec::new();
        for (name, scenario) in &variants(cli) {
            let (summary, awarded) = mean_runs(scenario, Arm::Incentive, &cli.seeds);
            let high = summary
                .delivery_ratio_by_priority
                .get(&1)
                .copied()
                .unwrap_or(0.0);
            println!(
                "{:>14} | {:>7.3} | {:>8.3} | {:>9} | {:>9} | {:>10.1}",
                name,
                summary.delivery_ratio,
                high,
                summary.relays_completed,
                summary.bonus_deliveries,
                awarded
            );
            rows.push(format!(
                "{name},{:.6},{:.6},{},{},{:.1}",
                summary.delivery_ratio,
                high,
                summary.relays_completed,
                summary.bonus_deliveries,
                awarded
            ));
        }
        // The all-off baseline for reference.
        let (cc, _) = mean_runs(&base, Arm::ChitChat, &cli.seeds);
        let high = cc
            .delivery_ratio_by_priority
            .get(&1)
            .copied()
            .unwrap_or(0.0);
        println!(
            "{:>14} | {:>7.3} | {:>8.3} | {:>9} | {:>9} | {:>10}",
            "chitchat", cc.delivery_ratio, high, cc.relays_completed, cc.bonus_deliveries, "-"
        );
        rows.push(format!(
            "chitchat,{:.6},{:.6},{},{},0",
            cc.delivery_ratio, high, cc.relays_completed, cc.bonus_deliveries
        ));
        write_csv(
            "ablation",
            "variant,mdr,mdr_high,relays,bonus_deliveries,tokens_awarded",
            &rows,
        );
    }
}

/// Baseline routing comparison — every router on the identical workload.
pub mod baselines {
    use super::*;
    use crate::{print_scenario_header, write_csv};
    use dtn_workloads::scenario::Arm;
    use dtn_workloads::sweep::RouterKind;

    fn scenario(cli: &Cli) -> Scenario {
        let mut scenario = cli.scale.base_scenario();
        scenario.selfish_fraction = 0.0;
        cli.prep(scenario.named("baselines"))
    }

    /// Maps a grid backend to its legacy standalone-router row. ChitChat
    /// is covered by the two arm rows; the compile-time-exhaustive match
    /// means a new `BackendKind` variant fails this build until the
    /// comparison table grows with it.
    fn router_for(kind: dtn_workloads::prelude::BackendKind) -> Option<(String, RouterKind)> {
        use dtn_workloads::prelude::BackendKind;
        match kind {
            BackendKind::ChitChat => None,
            BackendKind::Epidemic => Some(("epidemic".into(), RouterKind::Epidemic)),
            BackendKind::DirectDelivery => Some(("direct".into(), RouterKind::DirectDelivery)),
            BackendKind::SprayAndWait(n) => {
                Some((format!("spray&wait({n})"), RouterKind::SprayAndWait(n)))
            }
            BackendKind::TwoHop => Some(("two-hop".into(), RouterKind::TwoHop)),
            BackendKind::Prophet => Some(("prophet".into(), RouterKind::Prophet)),
        }
    }

    /// The comparison's row order: label + cell kind, one seed each. The
    /// router rows enumerate [`dtn_workloads::prelude::BackendKind::ALL`]
    /// (plus CEDO, which has no backend adapter) instead of a hand-written
    /// list, so the table cannot silently fall behind the grid.
    fn table(cli: &Cli) -> Vec<(String, Cell)> {
        let s = scenario(cli);
        let seed = cli.seeds[0];
        let mut rows = vec![
            (
                "incentive".to_owned(),
                Cell::arm(s.clone(), Arm::Incentive, seed),
            ),
            (
                "chitchat".to_owned(),
                Cell::arm(s.clone(), Arm::ChitChat, seed),
            ),
        ];
        for kind in dtn_workloads::prelude::BackendKind::ALL {
            if let Some((label, router)) = router_for(kind) {
                rows.push((label, Cell::router(s.clone(), router, seed)));
            }
        }
        rows.push(("cedo".to_owned(), Cell::router(s, RouterKind::Cedo, seed)));
        rows
    }

    /// Executor cells: both arms plus the six third-party routers.
    #[must_use]
    pub fn cells(cli: &Cli) -> Vec<Cell> {
        table(cli).into_iter().map(|(_, cell)| cell).collect()
    }

    /// Prints the table and writes `results/baselines.csv`.
    pub fn run(cli: &Cli) {
        let scenario = scenario(cli);
        print_scenario_header(
            "Baseline comparison — identical workload, every router",
            &scenario,
            &cli.seeds[..1],
        );
        let table = table(cli);
        let plan: Vec<Cell> = table.iter().map(|(_, c)| c.clone()).collect();
        let results = run_cells(&plan);

        println!(
            "{:>14} | {:>7} | {:>9} | {:>12} | {:>9} | {:>9}",
            "router", "MDR", "relays", "bytes (MB)", "latency s", "aborted"
        );
        println!("{}", "-".repeat(75));
        let mut csv = Vec::new();
        for ((name, _), result) in table.iter().zip(&results) {
            let s = &result.summary;
            println!(
                "{:>14} | {:>7.3} | {:>9} | {:>12.1} | {:>9.0} | {:>9}",
                name,
                s.delivery_ratio,
                s.relays_completed,
                s.relay_bytes as f64 / 1e6,
                s.mean_latency_secs,
                s.transfers_aborted
            );
            csv.push(format!(
                "{name},{:.6},{},{},{:.1},{}",
                s.delivery_ratio,
                s.relays_completed,
                s.relay_bytes,
                s.mean_latency_secs,
                s.transfers_aborted
            ));
        }
        write_csv(
            "baselines",
            "router,mdr,relays,bytes,latency_s,aborted",
            &csv,
        );
    }
}

/// Network-lifetime extension — finite batteries, 40% selfish.
pub mod lifetime {
    use super::*;
    use crate::{print_scenario_header, write_csv};
    use dtn_sim::stats::RunSummary;
    use dtn_workloads::scenario::Arm;

    /// The battery budgets swept (J); infinity = ideal power.
    const BUDGETS: [f64; 4] = [50.0, 150.0, 400.0, f64::INFINITY];

    fn base(cli: &Cli) -> Scenario {
        let mut base = cli.scale.base_scenario();
        base.selfish_fraction = 0.4;
        cli.prep(base.named("lifetime"))
    }

    fn scenario_for(base: &Scenario, budget: f64) -> Scenario {
        let mut s = base.clone();
        if budget.is_finite() {
            s.battery_joules = Some(budget);
        }
        s
    }

    /// Executor cells: every budget × both arms × seeds. Depletion counts
    /// ride back on [`RunSummary::depleted_nodes`], which is what lets this
    /// experiment share the pool instead of hand-building simulations.
    #[must_use]
    pub fn cells(cli: &Cli) -> Vec<Cell> {
        let base = base(cli);
        BUDGETS
            .iter()
            .flat_map(|&budget| {
                arm_cells(
                    std::slice::from_ref(&scenario_for(&base, budget)),
                    &Arm::BOTH,
                    &cli.seeds,
                )
            })
            .collect()
    }

    /// Prints the table and writes `results/lifetime.csv`.
    pub fn run(cli: &Cli) {
        let base = base(cli);
        let _ = run_cells(&cells(cli));
        print_scenario_header(
            "Network lifetime under finite batteries (extension)",
            &base,
            &cli.seeds,
        );

        println!(
            "{:>12} | {:>9} | {:>13} | {:>13} | {:>10} | {:>10}",
            "battery (J)", "arm", "MDR", "relays", "dead nodes", "bytes (MB)"
        );
        println!("{}", "-".repeat(82));
        let mut rows = Vec::new();
        for budget in BUDGETS {
            for arm in Arm::BOTH {
                let s = scenario_for(&base, budget);
                let runs = dtn_workloads::sweep::run_arm_seeds(&s, arm, &cli.seeds);
                let dead_total: u64 = runs.iter().map(|r| r.depleted_nodes).sum();
                let mean = RunSummary::mean_of(&runs);
                let dead = dead_total as f64 / cli.seeds.len() as f64;
                let label = if budget.is_finite() {
                    format!("{budget:.0}")
                } else {
                    "ideal".to_owned()
                };
                println!(
                    "{:>12} | {:>9} | {:>13.3} | {:>13} | {:>10.1} | {:>10.1}",
                    label,
                    arm.label(),
                    mean.delivery_ratio,
                    mean.relays_completed,
                    dead,
                    mean.relay_bytes as f64 / 1e6
                );
                rows.push(format!(
                    "{label},{},{:.6},{},{dead:.1},{}",
                    arm.label(),
                    mean.delivery_ratio,
                    mean.relays_completed,
                    mean.relay_bytes
                ));
            }
        }
        write_csv(
            "lifetime",
            "battery_j,arm,mdr,relays,dead_nodes,bytes",
            &rows,
        );
    }
}

/// Router × overlay matrix (extension): the incentive overlay composed
/// with every routing backend on one workload. The paper's headline
/// "Incentive vs ChitChat" comparison is the chitchat column of this
/// grid; the other columns measure how much of the win is
/// router-independent.
pub mod matrix {
    use super::*;
    use crate::{print_scenario_header, write_csv};
    use dtn_sim::stats::RunSummary;
    use dtn_workloads::prelude::{BackendKind, Overlay};

    fn scenario(cli: &Cli) -> Scenario {
        let mut s = cli.scale.base_scenario();
        s.selfish_fraction = 0.2;
        cli.prep(s.named("matrix"))
    }

    /// Executor cells: the full backend × overlay grid, every seed. The
    /// ChitChat rows canonicalize to the paper arms inside
    /// [`Cell::backend`], so they share cache entries with Figs. 5.1–5.6.
    #[must_use]
    pub fn cells(cli: &Cli) -> Vec<Cell> {
        let s = scenario(cli);
        let mut cells = Vec::new();
        for backend in BackendKind::ALL {
            for overlay in Overlay::BOTH {
                for &seed in &cli.seeds {
                    cells.push(Cell::backend(s.clone(), backend, overlay, seed));
                }
            }
        }
        cells
    }

    /// Prints the 12-row grid and writes `results/matrix.csv`.
    pub fn run(cli: &Cli) {
        let scenario = scenario(cli);
        let results = run_cells(&cells(cli));
        print_scenario_header(
            "Matrix — incentive overlay × routing backend (extension)",
            &scenario,
            &cli.seeds,
        );
        println!(
            "{:>10} | {:>9} | {:>7} | {:>9} | {:>10} | {:>9} | {:>8}",
            "backend", "overlay", "MDR", "relays", "bytes (MB)", "latency s", "settled"
        );
        println!("{}", "-".repeat(80));
        let mut rows = Vec::new();
        let per_cell = cli.seeds.len();
        let mut chunks = results.chunks(per_cell);
        for backend in BackendKind::ALL {
            for overlay in Overlay::BOTH {
                let chunk = chunks.next().expect("plan covers the grid");
                let summaries: Vec<RunSummary> = chunk.iter().map(|r| r.summary.clone()).collect();
                let mean = RunSummary::mean_of(&summaries);
                let settled =
                    chunk.iter().map(|r| r.settlements).sum::<u64>() as f64 / per_cell as f64;
                println!(
                    "{:>10} | {:>9} | {:>7.3} | {:>9} | {:>10.1} | {:>9.0} | {:>8.1}",
                    backend.tag(),
                    overlay.label(),
                    mean.delivery_ratio,
                    mean.relays_completed,
                    mean.relay_bytes as f64 / 1e6,
                    mean.mean_latency_secs,
                    settled
                );
                rows.push(format!(
                    "{},{},{:.6},{},{},{:.1},{:.1}",
                    backend.tag(),
                    overlay.tag(),
                    mean.delivery_ratio,
                    mean.relays_completed,
                    mean.relay_bytes,
                    mean.mean_latency_secs,
                    settled
                ));
            }
        }
        write_csv(
            "matrix",
            "backend,overlay,mdr,relays,bytes,latency_s,settlements",
            &rows,
        );
    }
}

/// Recovery-aware loss sweep (extension): delivery under in-flight payload
/// loss with the kernel's retry/resume layer on vs off, incentive arm.
pub mod loss {
    use super::*;
    use crate::{print_scenario_header, write_csv};
    use dtn_sim::stats::RunSummary;
    use dtn_sim::transfer::RecoveryPolicy;
    use dtn_workloads::scenario::Arm;

    /// The in-flight loss probabilities swept.
    pub const LOSSES: [f64; 5] = [0.0, 0.1, 0.2, 0.3, 0.4];

    fn base(cli: &Cli) -> Scenario {
        let mut s = cli.scale.base_scenario();
        s.selfish_fraction = 0.2;
        cli.prep(s.named("loss"))
    }

    fn scenario_for(base: &Scenario, loss: f64, retries: bool) -> Scenario {
        let mut s = base.clone();
        if loss > 0.0 {
            s.chaos = Some(format!("loss={loss}").parse().expect("valid spec"));
        }
        if retries {
            s.recovery = Some(RecoveryPolicy::default());
        }
        s
    }

    /// Executor cells: every loss level × retries {off, on} × seeds.
    #[must_use]
    pub fn cells(cli: &Cli) -> Vec<Cell> {
        let base = base(cli);
        let mut cells = Vec::new();
        for loss in LOSSES {
            for retries in [false, true] {
                for &seed in &cli.seeds {
                    cells.push(Cell::arm(
                        scenario_for(&base, loss, retries),
                        Arm::Incentive,
                        seed,
                    ));
                }
            }
        }
        cells
    }

    /// Prints the table and writes `results/loss.csv`.
    pub fn run(cli: &Cli) {
        let base = base(cli);
        let results = run_cells(&cells(cli));
        print_scenario_header(
            "Loss sweep — delivery vs payload loss, retries off/on (extension)",
            &base,
            &cli.seeds,
        );
        println!(
            "{:>7} | {:>13} | {:>12} | {:>9} | {:>8}",
            "loss %", "MDR (no retry)", "MDR (retry)", "retried", "gain"
        );
        println!("{}", "-".repeat(60));
        let mut rows = Vec::new();
        let per_cell = cli.seeds.len();
        let mut chunks = results.chunks(per_cell);
        for loss in LOSSES {
            let mean_of = |chunk: &[dtn_workloads::sweep::CellResult]| {
                let summaries: Vec<RunSummary> = chunk.iter().map(|r| r.summary.clone()).collect();
                RunSummary::mean_of(&summaries)
            };
            let off = mean_of(chunks.next().expect("plan covers the sweep"));
            let on = mean_of(chunks.next().expect("plan covers the sweep"));
            println!(
                "{:>7.0} | {:>13.3} | {:>12.3} | {:>9} | {:>+8.3}",
                loss * 100.0,
                off.delivery_ratio,
                on.delivery_ratio,
                on.transfers_retried,
                on.delivery_ratio - off.delivery_ratio
            );
            rows.push(format!(
                "{loss},{:.6},{:.6},{}",
                off.delivery_ratio, on.delivery_ratio, on.transfers_retried
            ));
        }
        write_csv("loss", "loss,mdr_no_retry,mdr_retry,retried", &rows);
    }
}

/// Adversarial economy sweep (extension): fraction of the token economy
/// captured by strategic nodes vs attacker population, with the
/// reputation-weighted-gossip/watchdog countermeasures off and on.
/// Every cell runs with a periodic `check_invariants` audit so economic
/// conservation is machine-checked under attack.
pub mod adversary {
    use super::*;
    use crate::{print_scenario_header, write_csv};
    use dtn_core::strategy::StrategyMix;
    use dtn_workloads::scenario::Arm;
    use dtn_workloads::sweep::CellResult;

    /// Attacker population fractions swept: the honest baseline plus four
    /// escalating attacker populations.
    pub const FRACTIONS: [f64; 5] = [0.0, 0.1, 0.2, 0.3, 0.4];

    /// Simulated-seconds between `check_invariants` audits in every cell.
    pub const AUDIT_EVERY: u64 = 300;

    fn base(cli: &Cli) -> Scenario {
        cli.prep(cli.scale.base_scenario().named("adversary"))
    }

    /// The strategy mix at a given attacker fraction: 40% free-riders,
    /// 10% minority-game players, 30% tag farmers, 20% whitewashers —
    /// every strategy in the book, weighted toward the custody attacks
    /// the watchdog can see. `None` for the honest/defense-free corner so
    /// that cell keeps its strategy-free cache key.
    fn mix_for(fraction: f64, defense: bool) -> Option<StrategyMix> {
        if fraction == 0.0 && !defense {
            return None;
        }
        Some(StrategyMix {
            free_rider_fraction: fraction * 0.4,
            minority_fraction: fraction * 0.1,
            farmer_fraction: fraction * 0.3,
            whitewash_fraction: fraction * 0.2,
            defense,
            ..StrategyMix::default()
        })
    }

    fn scenario_for(base: &Scenario, fraction: f64, defense: bool) -> Scenario {
        let mut s = base.clone();
        s.strategies = mix_for(fraction, defense);
        s.audit_every = Some(AUDIT_EVERY);
        s
    }

    /// Executor cells: every attacker fraction × defense {off, on} ×
    /// seeds, incentive arm.
    #[must_use]
    pub fn cells(cli: &Cli) -> Vec<Cell> {
        let base = base(cli);
        let mut cells = Vec::new();
        for fraction in FRACTIONS {
            for defense in [false, true] {
                for &seed in &cli.seeds {
                    cells.push(Cell::arm(
                        scenario_for(&base, fraction, defense),
                        Arm::Incentive,
                        seed,
                    ));
                }
            }
        }
        cells
    }

    /// Prints the table and writes `results/adversary.csv`.
    pub fn run(cli: &Cli) {
        let base = base(cli);
        let results = run_cells(&cells(cli));
        print_scenario_header(
            "Adversary sweep — economy captured by strategic nodes, defense off/on (extension)",
            &base,
            &cli.seeds,
        );
        println!(
            "{:>10} | {:>9} | {:>13} | {:>12} | {:>8} | {:>8}",
            "attacker %", "attackers", "capture (off)", "capture (on)", "mdr off", "mdr on"
        );
        println!("{}", "-".repeat(76));
        let endowment = base.nodes as f64 * base.protocol.incentive.initial_tokens;
        let mut rows = Vec::new();
        let per_cell = cli.seeds.len();
        let mut chunks = results.chunks(per_cell);
        for fraction in FRACTIONS {
            let attackers: usize = mix_for(fraction, true)
                .map(|m| m.counts(base.nodes).iter().sum())
                .unwrap_or(0);
            let capture_of = |chunk: &[CellResult]| {
                chunk
                    .iter()
                    .map(|r| r.attacker_tokens / endowment)
                    .sum::<f64>()
                    / chunk.len() as f64
            };
            let mdr_of = |chunk: &[CellResult]| {
                chunk.iter().map(|r| r.summary.delivery_ratio).sum::<f64>() / chunk.len() as f64
            };
            let off = chunks.next().expect("plan covers the sweep");
            let on = chunks.next().expect("plan covers the sweep");
            let (cap_off, cap_on) = (capture_of(off), capture_of(on));
            let (mdr_off, mdr_on) = (mdr_of(off), mdr_of(on));
            println!(
                "{:>10.0} | {:>9} | {:>13.4} | {:>12.4} | {:>8.3} | {:>8.3}",
                fraction * 100.0,
                attackers,
                cap_off,
                cap_on,
                mdr_off,
                mdr_on
            );
            rows.push(format!(
                "{fraction},{attackers},{cap_off:.6},{cap_on:.6},{mdr_off:.6},{mdr_on:.6}"
            ));
        }
        write_csv(
            "adversary",
            "attacker_fraction,attackers,capture_defense_off,capture_defense_on,mdr_defense_off,mdr_defense_on",
            &rows,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_workloads::paper::Scale;

    fn cli() -> Cli {
        Cli {
            scale: Scale::Reduced,
            seeds: vec![1, 2],
            smoke: true,
            expect_warm: false,
        }
    }

    #[test]
    fn suite_union_covers_every_figure() {
        let cli = cli();
        let union = suite_cells(&cli);
        let parts = [
            fig5_1::cells(&cli).len(),
            fig5_2::cells(&cli).len(),
            fig5_3::cells(&cli).len(),
            fig5_4::cells(&cli).len(),
            fig5_5::cells(&cli).len(),
            fig5_6::cells(&cli).len(),
            ablation::cells(&cli).len(),
            baselines::cells(&cli).len(),
            lifetime::cells(&cli).len(),
            matrix::cells(&cli).len(),
            loss::cells(&cli).len(),
            adversary::cells(&cli).len(),
        ];
        assert_eq!(union.len(), parts.iter().sum::<usize>());
        // Figs. 5.1 and 5.2 are the same sweep: their cells must share
        // cache keys so the union dedupes them inside the executor.
        let k1: Vec<u128> = fig5_1::cells(&cli).iter().map(Cell::cache_key).collect();
        let k2: Vec<u128> = fig5_2::cells(&cli).iter().map(Cell::cache_key).collect();
        assert_eq!(k1, k2, "fig5_1 and fig5_2 share conditions");
    }

    #[test]
    fn smoke_prep_shrinks_duration_and_caps_ttl() {
        let cli = cli();
        let base = cli.scale.base_scenario();
        let prepped = cli.prep(base.clone());
        assert!(prepped.duration_secs < base.duration_secs);
        assert!(prepped.message_ttl_secs <= prepped.duration_secs);
        // Off-switch: without --smoke the scenario passes through.
        let off = Cli {
            smoke: false,
            ..cli.clone()
        };
        assert_eq!(off.prep(base.clone()).duration_secs, base.duration_secs);
    }

    #[test]
    fn matrix_covers_the_full_grid_and_reuses_the_arm_cells() {
        use dtn_workloads::sweep::CellKind;
        let cli = cli();
        let cells = matrix::cells(&cli);
        // 6 backends × 2 overlays × 2 seeds.
        assert_eq!(cells.len(), 24);
        let arm_rows = cells
            .iter()
            .filter(|c| matches!(c.kind, CellKind::Arm(_)))
            .count();
        assert_eq!(
            arm_rows,
            2 * cli.seeds.len(),
            "the ChitChat rows canonicalize to the paper arms and share their cache"
        );
    }

    #[test]
    fn loss_cells_leave_the_clean_point_chaos_free() {
        let cli = cli();
        let cells = loss::cells(&cli);
        // 5 loss levels × retries {off, on} × 2 seeds.
        assert_eq!(cells.len(), 20);
        let clean = cells.iter().filter(|c| c.scenario.chaos.is_none()).count();
        assert_eq!(clean, 4, "loss=0 rows carry no fault plan");
        let with_recovery = cells
            .iter()
            .filter(|c| c.scenario.recovery.is_some())
            .count();
        assert_eq!(with_recovery, 10, "half the sweep runs with retries on");
    }

    #[test]
    fn adversary_cells_audit_everything_and_keep_the_honest_corner_clean() {
        let cli = cli();
        let cells = adversary::cells(&cli);
        // 5 attacker fractions × defense {off, on} × 2 seeds.
        assert_eq!(cells.len(), 20);
        assert!(
            cells.iter().all(|c| c.scenario.audit_every.is_some()),
            "every adversary cell runs invariant-audited"
        );
        let strategy_free = cells
            .iter()
            .filter(|c| c.scenario.strategies.is_none())
            .count();
        assert_eq!(
            strategy_free,
            cli.seeds.len(),
            "only the honest/defense-off corner keeps a strategy-free scenario"
        );
        let armed = cells
            .iter()
            .filter(|c| c.scenario.strategies.is_some_and(|m| m.defense))
            .count();
        assert_eq!(
            armed,
            5 * cli.seeds.len(),
            "half the sweep arms the defense"
        );
    }

    #[test]
    fn lifetime_cells_leave_ideal_battery_unset() {
        let cli = cli();
        let cells = lifetime::cells(&cli);
        // 4 budgets × 2 arms × 2 seeds.
        assert_eq!(cells.len(), 16);
        let ideal = cells
            .iter()
            .filter(|c| c.scenario.battery_joules.is_none())
            .count();
        assert_eq!(ideal, 4, "ideal budget rows keep battery_joules = None");
    }
}
