//! # dtn-bench
//!
//! The experiment harness: one binary per figure of the paper's evaluation
//! (Figs. 5.1–5.6), an ablation study, and an `all` driver. Each binary
//! prints the figure's series as an aligned table plus machine-readable
//! CSV, and writes the CSV under `results/`.
//!
//! ```text
//! cargo run --release -p dtn-bench --bin fig5_1            # reduced scale
//! cargo run --release -p dtn-bench --bin fig5_1 -- --full  # Table 5.1 scale
//! cargo run --release -p dtn-bench --bin fig5_1 -- --seeds 1
//! cargo run --release -p dtn-bench --bin all               # everything
//! ```
//!
//! Criterion performance benchmarks live under `benches/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use dtn_workloads::paper::Scale;
use dtn_workloads::scenario::Scenario;
use dtn_workloads::sweep;

pub mod figures;

/// Conventional location of the persistent run cache (`--sweep-cache`).
pub const SWEEP_CACHE_DIR: &str = "results/.sweep-cache";

/// Parsed command-line options shared by every figure binary.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiment scale (reduced by default; `--full` for Table 5.1).
    pub scale: Scale,
    /// Seeds to average over (`--seeds N` truncates the scale's set).
    pub seeds: Vec<u64>,
    /// CI smoke mode (`--smoke`): simulated durations divided by 12 so
    /// the full figure suite finishes in CI time.
    pub smoke: bool,
    /// Fail if any cell missed the cache (`--expect-warm`): the CI
    /// warm-cache invariant for the second `all` invocation.
    pub expect_warm: bool,
}

impl Cli {
    /// Parses `std::env::args` and applies the sweep-executor flags
    /// (worker count, cache persistence) to the process-global executor
    /// configuration.
    ///
    /// Flags: `--full` (paper scale), `--seeds N` (use the first N
    /// seeds), `--sweep-workers N` (executor pool size; default = cores),
    /// `--sweep-cache` (persist the run cache under
    /// `results/.sweep-cache/`), `--smoke` (divide durations by 12),
    /// `--expect-warm` (fail on any cache miss).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags.
    #[must_use]
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1).collect())
    }

    /// [`Cli::parse`] over an explicit argument vector (testable).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags.
    #[must_use]
    pub fn parse_from(args: Vec<String>) -> Self {
        let mut scale = Scale::Reduced;
        let mut seed_count: Option<usize> = None;
        let mut smoke = false;
        let mut expect_warm = false;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => scale = Scale::Full,
                "--seeds" => {
                    i += 1;
                    let n = args
                        .get(i)
                        .and_then(|s| s.parse::<usize>().ok())
                        .unwrap_or_else(|| panic!("--seeds needs a positive integer"));
                    assert!(n > 0, "--seeds needs a positive integer");
                    seed_count = Some(n);
                }
                "--sweep-workers" => {
                    i += 1;
                    let n = args
                        .get(i)
                        .and_then(|s| s.parse::<usize>().ok())
                        .unwrap_or_else(|| panic!("--sweep-workers needs a positive integer"));
                    assert!(n > 0, "--sweep-workers needs a positive integer");
                    sweep::set_workers(n);
                }
                "--sweep-cache" => sweep::set_cache_dir(Some(PathBuf::from(SWEEP_CACHE_DIR))),
                "--smoke" => smoke = true,
                "--expect-warm" => expect_warm = true,
                other => panic!(
                    "unknown flag {other}; use --full, --seeds N, --sweep-workers N, \
                     --sweep-cache, --smoke and/or --expect-warm"
                ),
            }
            i += 1;
        }
        let all = scale.seeds();
        let n = seed_count.unwrap_or(all.len()).min(all.len());
        Cli {
            scale,
            seeds: all[..n].to_vec(),
            smoke,
            expect_warm,
        }
    }

    /// Applies the smoke transform: under `--smoke` the simulated
    /// duration shrinks twelvefold (floored at ten minutes) so the full
    /// suite runs in CI time; otherwise the scenario passes through
    /// untouched. Every figure routes its sweep scenarios through here so
    /// cells built for prefetch and cells built for formatting hash to
    /// the same cache keys.
    #[must_use]
    pub fn prep(&self, mut scenario: Scenario) -> Scenario {
        if self.smoke {
            scenario.duration_secs = (scenario.duration_secs / 12.0).max(600.0);
            scenario.message_ttl_secs = scenario.message_ttl_secs.min(scenario.duration_secs);
        }
        scenario
    }

    /// Asserts the warm-cache invariant when `--expect-warm` was given:
    /// every cell of the invocation must have been a cache hit.
    ///
    /// # Panics
    ///
    /// Panics (failing the process) if any cell missed the cache.
    pub fn enforce_expect_warm(&self) {
        if !self.expect_warm {
            return;
        }
        let m = sweep::metrics();
        assert!(
            m.cache_misses == 0,
            "--expect-warm: expected a fully warm cache, but {} cell(s) missed \
             ({} hits, {} run)",
            m.cache_misses,
            m.cache_hits,
            m.cells_run
        );
        println!(
            "[sweep] warm cache verified: {} hits, 0 misses ({} from disk)",
            m.cache_hits, m.disk_hits
        );
    }
}

/// Prints a banner plus the scenario's Table 5.1 parameters, so every
/// figure's output documents the exact condition it ran under.
pub fn print_scenario_header(title: &str, scenario: &Scenario, seeds: &[u64]) {
    println!("==============================================================");
    println!("{title}");
    println!("==============================================================");
    println!(
        "participants {}   area {} km²   simulated {}h   seeds {:?}",
        scenario.nodes,
        scenario.area_km2,
        scenario.duration_secs / 3600.0,
        seeds
    );
    println!(
        "pool {} keywords   {} interests/node   msg {} B every {}s (TTL {}s)",
        scenario.keyword_pool,
        scenario.interests_per_node,
        scenario.message_size,
        scenario.message_interval_secs,
        scenario.message_ttl_secs
    );
    println!(
        "radio {} kB/s, {} m   buffer {} MB   tokens {}   relay threshold {}",
        scenario.radio.link_speed_bps / 1000.0,
        scenario.radio.range_m,
        scenario.buffer_bytes / 1_000_000,
        scenario.protocol.incentive.initial_tokens,
        scenario.protocol.incentive.relay_threshold
    );
    println!();
}

/// Writes CSV rows (with a header line) to `results/<name>.csv`, creating
/// the directory if needed, and echoes the path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = PathBuf::from("results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{header}");
            for row in rows {
                let _ = writeln!(f, "{row}");
            }
            println!("\n[csv] {}", path.display());
        }
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Renders a time series as a compact ASCII chart (one row per series
/// value band, time flowing left to right), so figure binaries can show
/// the curve's shape directly in the terminal next to the numeric table.
///
/// Returns an empty string for series with fewer than two points.
#[must_use]
pub fn ascii_chart(series: &[(f64, f64)], height: usize, label: &str) -> String {
    if series.len() < 2 || height < 2 {
        return String::new();
    }
    let (min, max) = series
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &(_, v)| {
            (lo.min(v), hi.max(v))
        });
    let span = (max - min).max(1e-9);
    let width = series.len();
    let mut grid = vec![vec![' '; width]; height];
    for (x, &(_, v)) in series.iter().enumerate() {
        let row = ((max - v) / span * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][x] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let edge = if i == 0 {
            format!("{max:8.2} ┤")
        } else if i == height - 1 {
            format!("{min:8.2} ┤")
        } else {
            "         │".to_owned()
        };
        out.push_str(&edge);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("         └{} {label}\n", "─".repeat(width)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_workloads::paper::reduced_scenario;

    #[test]
    fn ascii_chart_renders_extremes() {
        let series = vec![(0.0, 5.0), (1.0, 3.0), (2.0, 1.0), (3.0, 1.0)];
        let chart = ascii_chart(&series, 4, "t");
        assert!(chart.contains("5.00"), "max labelled: {chart}");
        assert!(chart.contains("1.00"), "min labelled");
        assert_eq!(chart.matches('*').count(), 4, "one mark per point");
        let first_line = chart.lines().next().expect("nonempty");
        assert!(first_line.contains('*'), "the max sits on the top row");
    }

    #[test]
    fn ascii_chart_degenerate_inputs() {
        assert!(ascii_chart(&[], 4, "t").is_empty());
        assert!(ascii_chart(&[(0.0, 1.0)], 4, "t").is_empty());
        assert!(ascii_chart(&[(0.0, 1.0), (1.0, 2.0)], 1, "t").is_empty());
        // Flat series must not divide by zero.
        let flat = ascii_chart(&[(0.0, 2.0), (1.0, 2.0), (2.0, 2.0)], 3, "t");
        assert_eq!(flat.matches('*').count(), 3);
    }

    #[test]
    fn header_prints_without_panicking() {
        print_scenario_header("test", &reduced_scenario(), &[1, 2]);
    }

    #[test]
    fn csv_writes_into_results_dir() {
        let dir = tempdir();
        let _guard = Chdir::new(&dir);
        write_csv("unit-test", "a,b", &["1,2".into(), "3,4".into()]);
        let content = std::fs::read_to_string("results/unit-test.csv").expect("written");
        assert_eq!(content, "a,b\n1,2\n3,4\n");
    }

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dtn-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    /// Restores the working directory on drop so tests do not interfere.
    struct Chdir {
        original: std::path::PathBuf,
    }

    impl Chdir {
        fn new(to: &std::path::Path) -> Self {
            let original = std::env::current_dir().expect("cwd");
            std::env::set_current_dir(to).expect("chdir");
            Chdir { original }
        }
    }

    impl Drop for Chdir {
        fn drop(&mut self) {
            let _ = std::env::set_current_dir(&self.original);
        }
    }
}
