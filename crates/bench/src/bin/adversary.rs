//! Adversarial economy sweep (ours, beyond the paper): what fraction of
//! the closed token economy do economically rational attackers —
//! free-riders, minority-game players, tag-farmer rings, whitewashers —
//! capture as their population grows, and how much of that capture do the
//! sequenced, reputation-weighted gossip and watchdog custody
//! countermeasures claw back. Every cell runs with a periodic
//! `check_invariants` audit.
//!
//! ```text
//! cargo run --release -p dtn-bench --bin adversary
//! cargo run --release -p dtn-bench --bin adversary -- --smoke --sweep-cache
//! ```

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::adversary::run(&cli);
    cli.enforce_expect_warm();
}
