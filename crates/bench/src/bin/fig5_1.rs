//! Figure 5.1 — Message Delivery Ratio vs percentage of selfish nodes.
//!
//! Reproduces the paper's headline comparison: MDR of the full incentive
//! mechanism vs plain ChitChat while the selfish fraction sweeps 0–100% in
//! steps of 10. Expected shape (Paper I, §5.A): both curves decrease with
//! the selfish percentage; Incentive sits slightly below ChitChat (token
//! exhaustion); neither reaches zero at 100% because selfish nodes still
//! open their medium one encounter in ten.

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::fig5_1::run(&cli);
    cli.enforce_expect_warm();
}
