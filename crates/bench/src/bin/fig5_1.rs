//! Figure 5.1 — Message Delivery Ratio vs percentage of selfish nodes.
//!
//! Reproduces the paper's headline comparison: MDR of the full incentive
//! mechanism vs plain ChitChat while the selfish fraction sweeps 0–100% in
//! steps of 10. Expected shape (Paper I, §5.A): both curves decrease with
//! the selfish percentage; Incentive sits slightly below ChitChat (token
//! exhaustion); neither reaches zero at 100% because selfish nodes still
//! open their medium one encounter in ten.

use dtn_bench::{print_scenario_header, write_csv, Cli};
use dtn_workloads::dispersion::run_seeds_detailed;
use dtn_workloads::paper::selfish_sweep;
use dtn_workloads::scenario::Arm;

fn main() {
    let cli = Cli::parse();
    let sweep = selfish_sweep(cli.scale);
    print_scenario_header(
        "Fig 5.1 — MDR vs percentage of selfish nodes",
        &sweep[0],
        &cli.seeds,
    );
    println!(
        "{:>9} | {:>17} | {:>17} | {:>9}",
        "selfish %", "Incentive MDR", "ChitChat MDR", "gap"
    );
    println!("{}", "-".repeat(63));
    let mut rows = Vec::new();
    for scenario in &sweep {
        let pct = (scenario.selfish_fraction * 100.0).round();
        let (_, inc) = run_seeds_detailed(scenario, Arm::Incentive, &cli.seeds);
        let (_, cc) = run_seeds_detailed(scenario, Arm::ChitChat, &cli.seeds);
        println!(
            "{:>9} | {:>17} | {:>17} | {:>+9.3}",
            pct,
            inc.delivery_ratio.display(3),
            cc.delivery_ratio.display(3),
            cc.delivery_ratio.mean - inc.delivery_ratio.mean
        );
        rows.push(format!(
            "{pct},{:.6},{:.6},{:.6},{:.6}",
            inc.delivery_ratio.mean,
            inc.delivery_ratio.std_dev,
            cc.delivery_ratio.mean,
            cc.delivery_ratio.std_dev
        ));
    }
    write_csv(
        "fig5_1",
        "selfish_pct,mdr_incentive,sd_incentive,mdr_chitchat,sd_chitchat",
        &rows,
    );
}
