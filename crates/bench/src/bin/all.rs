//! Runs every figure binary in sequence (same flags forwarded), so
//! `cargo run --release -p dtn-bench --bin all` regenerates the complete
//! evaluation in one go.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in [
        "fig5_1", "fig5_2", "fig5_3", "fig5_4", "fig5_5", "fig5_6", "ablation",
    ] {
        let path = exe_dir.join(bin);
        println!("\n##### {bin} #####\n");
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{bin} exited with {status}");
    }
}
