//! Runs the complete evaluation in one process: the union of every
//! figure's cells is prefetched through the sweep executor's worker pool,
//! then each figure renders from the warm memo. Conditions shared between
//! figures (the Fig. 5.1/5.2 sweep, Fig. 5.3's ×1.0 endowment) simulate
//! once.
//!
//! ```text
//! cargo run --release -p dtn-bench --bin all
//! cargo run --release -p dtn-bench --bin all -- --sweep-workers 8 --sweep-cache
//! cargo run --release -p dtn-bench --bin all -- --smoke --sweep-cache --expect-warm
//! ```

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::run_all(&cli);
    cli.enforce_expect_warm();
}
