//! Figure 5.5 — MDR vs number of users on a fixed area.
//!
//! Expected shape (Paper I, §5.E): MDR rises with the user count for both
//! arms (more carriers, more paths), and the ChitChat−Incentive gap
//! shrinks as the count grows, nearly vanishing at the top count — with
//! more alternative paths a starved destination soon meets another
//! affordable deliverer.

use dtn_bench::{print_scenario_header, write_csv, Cli};
use dtn_workloads::paper::user_count_sweep;
use dtn_workloads::runner::compare_arms;

fn main() {
    let cli = Cli::parse();
    let sweep = user_count_sweep(cli.scale);
    print_scenario_header(
        "Fig 5.5 — MDR vs number of users (fixed area)",
        &sweep[0],
        &cli.seeds,
    );
    println!(
        "{:>7} | {:>13} | {:>13} | {:>9}",
        "users", "Incentive MDR", "ChitChat MDR", "gap"
    );
    println!("{}", "-".repeat(53));
    let mut rows = Vec::new();
    for scenario in &sweep {
        let cmp = compare_arms(scenario, &cli.seeds);
        println!(
            "{:>7} | {:>13.3} | {:>13.3} | {:>+9.3}",
            scenario.nodes,
            cmp.incentive.delivery_ratio,
            cmp.chitchat.delivery_ratio,
            cmp.mdr_gap()
        );
        rows.push(format!(
            "{},{:.6},{:.6}",
            scenario.nodes, cmp.incentive.delivery_ratio, cmp.chitchat.delivery_ratio
        ));
    }
    write_csv("fig5_5", "users,mdr_incentive,mdr_chitchat", &rows);
}
