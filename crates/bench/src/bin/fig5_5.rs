//! Figure 5.5 — MDR vs number of users on a fixed area.
//!
//! Expected shape (Paper I, §5.E): MDR rises with the user count for both
//! arms (more carriers, more paths), and the ChitChat−Incentive gap
//! shrinks as the count grows, nearly vanishing at the top count — with
//! more alternative paths a starved destination soon meets another
//! affordable deliverer.

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::fig5_5::run(&cli);
    cli.enforce_expect_warm();
}
