//! Recovery-aware loss sweep (ours, beyond the paper): message delivery
//! under in-flight payload loss from 0% to 40%, with the kernel's
//! checkpointed retry layer off vs on, on the incentive arm.
//!
//! ```text
//! cargo run --release -p dtn-bench --bin loss
//! cargo run --release -p dtn-bench --bin loss -- --smoke --sweep-cache
//! ```

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::loss::run(&cli);
    cli.enforce_expect_warm();
}
