//! Kernel performance baseline: runs pinned scenarios over fixed seeds
//! with the phase profiler enabled and writes `BENCH_kernel.json`.
//!
//! The scenarios are *pinned*: their parameters must not drift between
//! baseline captures, or wall-clock numbers stop being comparable across
//! commits. Change a scenario only together with a rename (bump the
//! `-v1` suffix) and a fresh committed baseline.
//!
//! ```text
//! cargo run --release -p dtn-bench --bin perf              # 3 seeds
//! cargo run --release -p dtn-bench --bin perf -- --seeds 1 # CI quick
//! ```
//!
//! Schema of `BENCH_kernel.json`: a JSON array with one row per pinned
//! scenario (all totals are summed across that scenario's runs):
//!
//! ```json
//! [{"name": "...", "wall_secs": f, "sim_secs_per_sec": f,
//!   "events_per_sec": f, "steps": n, "contacts": n, "relays": n,
//!   "retried": n, "resumed": n}, ...]
//! ```
//!
//! Rows: `perf-medium-v1` is the clean kernel; `chaos-recovery-v1` runs
//! the same world under transfer loss and link cuts with the default
//! recovery policy, so the baseline also tracks the retry/resume path.

use dtn_sim::faults::FaultPlan;
use dtn_sim::transfer::RecoveryPolicy;
use dtn_workloads::paper::{reduced_scenario, seeds_for};
use dtn_workloads::runner::{run_once_perf, PerfReport};
use dtn_workloads::scenario::{Arm, Scenario};

/// The pinned clean baseline: the reduced-scale world under a stable
/// name so recorded baselines are tied to an exact configuration.
fn perf_scenario() -> Scenario {
    reduced_scenario().named("perf-medium-v1")
}

/// The pinned recovery baseline: the same world with enough transfer
/// loss and link churn to keep the retry queue and checkpoint store
/// busy, so regressions in the recovery path show up as wall-clock.
fn chaos_recovery_scenario() -> Scenario {
    let mut s = reduced_scenario().named("chaos-recovery-v1");
    s.chaos = Some(FaultPlan {
        transfer_loss_prob: 0.15,
        link_cut_per_hour: 4.0,
        link_cut_secs: 30.0,
        ..FaultPlan::default()
    });
    s.recovery = Some(RecoveryPolicy::default());
    s
}

/// Run one pinned scenario over `seeds` and format its baseline row.
fn bench_row(scenario: &Scenario, seeds: &[u64]) -> String {
    dtn_bench::print_scenario_header("kernel performance baseline", scenario, seeds);

    // Sequential, one profiled run per seed: wall-clock must measure the
    // kernel, not scheduler contention between concurrent runs.
    let mut report: Option<PerfReport> = None;
    let mut relays = 0u64;
    let mut retried = 0u64;
    let mut resumed = 0u64;
    for &seed in seeds {
        let (run, perf) = run_once_perf(scenario, Arm::Incentive, seed);
        relays += run.summary.relays_completed;
        retried += run.summary.transfers_retried;
        resumed += run.summary.transfers_resumed;
        println!(
            "seed {seed}: {:.2}s wall, {:.0} ev/s, {} relays",
            perf.wall_secs, perf.events_per_sec, run.summary.relays_completed
        );
        match &mut report {
            Some(r) => r.merge(&perf),
            None => report = Some(perf),
        }
    }
    let report = report.expect("at least one seed");
    let contacts = report.metrics.counter("kernel.contacts_up");

    println!("\n{}", report.render());
    assert!(
        report.events_per_sec > 0.0 && report.wall_secs > 0.0,
        "profiled run produced no throughput"
    );

    format!(
        "{{\n    \"name\": {},\n    \"wall_secs\": {:.6},\n    \"sim_secs_per_sec\": {:.3},\n    \
         \"events_per_sec\": {:.3},\n    \"steps\": {},\n    \"contacts\": {},\n    \
         \"relays\": {},\n    \"retried\": {},\n    \"resumed\": {}\n  }}",
        serde_json::to_string(&scenario.name).expect("string encodes"),
        report.wall_secs,
        report.sim_secs_per_sec,
        report.events_per_sec,
        report.steps,
        contacts,
        relays,
        retried,
        resumed
    )
}

fn main() {
    let mut seed_count = 3usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seed_count = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| panic!("--seeds needs a positive integer"));
            }
            other => panic!("unknown flag {other}; usage: perf [--seeds N]"),
        }
        i += 1;
    }

    let seeds = seeds_for(seed_count);
    let rows: Vec<String> = [perf_scenario(), chaos_recovery_scenario()]
        .iter()
        .map(|scenario| bench_row(scenario, &seeds))
        .collect();
    let json = format!("[\n  {}\n]\n", rows.join(",\n  "));

    let path = "BENCH_kernel.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("[json] {path}");
}
