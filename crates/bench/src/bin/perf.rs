//! Kernel performance baseline: runs a pinned medium scenario over fixed
//! seeds with the phase profiler enabled and writes `BENCH_kernel.json`.
//!
//! The scenario is *pinned*: its parameters must not drift between
//! baseline captures, or wall-clock numbers stop being comparable across
//! commits. Change the scenario only together with a rename (bump the
//! `-v1` suffix) and a fresh committed baseline.
//!
//! ```text
//! cargo run --release -p dtn-bench --bin perf              # 3 seeds
//! cargo run --release -p dtn-bench --bin perf -- --seeds 1 # CI quick
//! ```
//!
//! Schema of `BENCH_kernel.json` (all totals are summed across runs):
//!
//! ```json
//! {"name": "...", "wall_secs": f, "sim_secs_per_sec": f,
//!  "events_per_sec": f, "steps": n, "contacts": n, "relays": n}
//! ```

use dtn_workloads::paper::{reduced_scenario, seeds_for};
use dtn_workloads::runner::{run_once_perf, PerfReport};
use dtn_workloads::scenario::Arm;

/// The pinned baseline scenario: the reduced-scale world under a stable
/// name so recorded baselines are tied to an exact configuration.
fn perf_scenario() -> dtn_workloads::scenario::Scenario {
    reduced_scenario().named("perf-medium-v1")
}

fn main() {
    let mut seed_count = 3usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seed_count = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| panic!("--seeds needs a positive integer"));
            }
            other => panic!("unknown flag {other}; usage: perf [--seeds N]"),
        }
        i += 1;
    }

    let scenario = perf_scenario();
    let seeds = seeds_for(seed_count);
    dtn_bench::print_scenario_header("kernel performance baseline", &scenario, &seeds);

    // Sequential, one profiled run per seed: wall-clock must measure the
    // kernel, not scheduler contention between concurrent runs.
    let mut report: Option<PerfReport> = None;
    let mut relays = 0u64;
    for &seed in &seeds {
        let (run, perf) = run_once_perf(&scenario, Arm::Incentive, seed);
        relays += run.summary.relays_completed;
        println!(
            "seed {seed}: {:.2}s wall, {:.0} ev/s, {} relays",
            perf.wall_secs, perf.events_per_sec, run.summary.relays_completed
        );
        match &mut report {
            Some(r) => r.merge(&perf),
            None => report = Some(perf),
        }
    }
    let report = report.expect("at least one seed");
    let contacts = report.metrics.counter("kernel.contacts_up");

    println!("\n{}", report.render());

    let json = format!(
        "{{\n  \"name\": {},\n  \"wall_secs\": {:.6},\n  \"sim_secs_per_sec\": {:.3},\n  \
         \"events_per_sec\": {:.3},\n  \"steps\": {},\n  \"contacts\": {},\n  \"relays\": {}\n}}\n",
        serde_json::to_string(&scenario.name).expect("string encodes"),
        report.wall_secs,
        report.sim_secs_per_sec,
        report.events_per_sec,
        report.steps,
        contacts,
        relays
    );
    assert!(
        report.events_per_sec > 0.0 && report.wall_secs > 0.0,
        "profiled run produced no throughput"
    );

    let path = "BENCH_kernel.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("[json] {path}");
}
