//! Kernel performance baseline: runs pinned scenarios over fixed seeds
//! with the phase profiler enabled and writes `BENCH_kernel.json`.
//!
//! The scenarios are *pinned*: their parameters must not drift between
//! baseline captures, or wall-clock numbers stop being comparable across
//! commits. Change a scenario only together with a rename (bump the
//! `-v1` suffix) and a fresh committed baseline.
//!
//! ```text
//! cargo run --release -p dtn-bench --bin perf                 # full capture
//! cargo run --release -p dtn-bench --bin perf -- --seeds 1    # fewer seeds
//! cargo run --release -p dtn-bench --bin perf -- --quick \
//!     --check BENCH_kernel.json                               # CI gate
//! ```
//!
//! Schema of `BENCH_kernel.json`: a JSON array with one row per
//! (pinned scenario, thread count); totals are summed across that row's
//! seeds. `threads` is the kernel shard count the row ran at and `mode`
//! labels `--quick` rows, whose shortened runs are not comparable to
//! full captures:
//!
//! ```json
//! [{"name": "...", "threads": n, "mode": "full|quick",
//!   "wall_secs": f, "sim_secs_per_sec": f, "events_per_sec": f,
//!   "steps": n, "contacts": n, "relays": n, "retried": n,
//!   "resumed": n}, ...]
//! ```
//!
//! Rows: `perf-medium-v1` is the clean kernel, captured at threads 1, 2,
//! 4 and 8 so the baseline records the scaling curve; `chaos-recovery-v1`
//! runs the same world under transfer loss and link cuts with the default
//! recovery policy, tracking the retry/resume path; `perf-large-v1` is a
//! 1000-node world at the same density (threads 1 and 4);
//! `perf-huge-v1` is a 100k-node world at the same density (threads 1
//! and 4, one seed) — the scale the event-driven contact core targets;
//! `sweep-suite-v1` is a miniature figure grid pushed through the sweep
//! executor at 1 worker and at `min(8, cores)` workers with a cold memo,
//! plus a `sweep-suite-v1-warm` pass over the populated memo. For sweep
//! rows `threads` records the *worker-pool size* (each cell runs a
//! single-threaded kernel), `cells`/`cells_per_sec` record the suite
//! shape, and `events_per_sec` mirrors `cells_per_sec` so the committed
//! comparison below applies uniformly.
//!
//! ## Regression gate (`--check <baseline>`)
//!
//! With `--check`, the committed baseline is read *before* the capture,
//! and after writing the fresh numbers the run fails if any row's
//! `events_per_sec` fell more than `--tolerance` (default 0.25) below the
//! committed row with the same `(name, threads)`. Rows absent from the
//! baseline are reported but never fail the gate, so adding a scenario
//! does not require a flag-day (warm sweep rows are also exempt — memo
//! hits are too fast for wall-clock comparisons across machines). The
//! gate additionally enforces *relative* floors computed within the
//! fresh capture: `perf-medium-v1` at threads >= 4 must clear 1.5x the
//! pre-optimization single-thread baseline ([`SEED_MEDIUM_EV_PER_SEC`]),
//! `perf-large-v1` at threads = 1 must clear [`EVENT_CORE_FLOOR`]x the
//! time-stepped baseline ([`SEED_LARGE_EV_PER_SEC`]), `perf-huge-v1` at
//! threads = 4 must beat its own threads = 1 row whenever >= 4 cores are
//! available (skipped on smaller machines), and the sweep suite must
//! show the pool and the cache actually paying off — cold at >= 4
//! workers at least [`SWEEP_COLD_SPEEDUP`]x the cold 1-worker rate, warm
//! at least [`SWEEP_WARM_SPEEDUP`]x it.

use std::time::Instant;

use dtn_sim::faults::FaultPlan;
use dtn_sim::transfer::RecoveryPolicy;
use dtn_workloads::paper::{reduced_scenario, seeds_for};
use dtn_workloads::runner::{run_once_perf, PerfReport};
use dtn_workloads::scenario::{Arm, Scenario};
use dtn_workloads::sweep::{self, run_cells, Cell};
use serde::Deserialize;

/// `perf-medium-v1` events/sec of the single-threaded kernel as committed
/// before the parallel step loop landed. Pinned like the scenarios: the
/// `--check` floor asserts the sharded kernel stays >= 1.5x this number
/// at threads >= 4, whatever the current committed baseline says.
const SEED_MEDIUM_EV_PER_SEC: f64 = 6566.688;

/// Required speedup over [`SEED_MEDIUM_EV_PER_SEC`] at threads >= 4.
const PARALLEL_FLOOR: f64 = 1.5;

/// `perf-large-v1` events/sec of the single-threaded kernel as committed
/// before the event-driven contact core and the in-place exchange paths
/// landed. The `--check` floor asserts the current kernel stays >=
/// [`EVENT_CORE_FLOOR`]x this rate at threads = 1 — the event core's
/// speedup is algorithmic, so it must show without any sharding.
const SEED_LARGE_EV_PER_SEC: f64 = 9278.437;

/// Required speedup over [`SEED_LARGE_EV_PER_SEC`] at threads = 1.
const EVENT_CORE_FLOOR: f64 = 5.0;

/// Thread counts the medium scenario is captured at (the scaling curve).
const MEDIUM_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Thread counts for the large scenario (one serial, one sharded point).
const LARGE_SWEEP: [usize; 2] = [1, 4];

/// Thread counts for the huge scenario. The pair doubles as the gate's
/// thread-scaling probe: with >= 4 cores available, the threads = 4 row
/// must beat the threads = 1 row outright.
const HUGE_SWEEP: [usize; 2] = [1, 4];

/// Absolute events/sec floor for `perf-huge-v2` at threads = 1. The row
/// is new with the settlement wheel, so the first gate is an absolute
/// floor (roughly half the capture rate on the reference machine) rather
/// than a committed-row comparison; later captures also get the standard
/// tolerance check against the committed row.
const HUGE2_EV_FLOOR: f64 = 8_000.0;

/// Ceiling on protocol state bytes per node for `perf-huge-v2`: interest
/// + reputation table bytes (the arena gauges) divided by the node count.
/// The measured footprint is ~13.3 kB/node — reputation gossip
/// legitimately spreads opinion rows across a contact-diverse 250k-node
/// population, and that gossip reach (not the slimmed row structs) is
/// what dominates. The ceiling sits well above the measurement so the
/// gate catches a structural regression (a fatter row, a leaked scratch
/// buffer) without tripping on workload-driven gossip variance.
const HUGE2_BYTES_PER_NODE_CEILING: f64 = 24_576.0;

/// Required cold-cache sweep speedup at >= 4 workers over 1 worker.
const SWEEP_COLD_SPEEDUP: f64 = 2.0;

/// Required warm-cache sweep speedup over the cold 1-worker rate.
const SWEEP_WARM_SPEEDUP: f64 = 5.0;

/// The pinned clean baseline: the reduced-scale world under a stable
/// name so recorded baselines are tied to an exact configuration.
fn perf_scenario() -> Scenario {
    reduced_scenario().named("perf-medium-v1")
}

/// The pinned recovery baseline: the same world with enough transfer
/// loss and link churn to keep the retry queue and checkpoint store
/// busy, so regressions in the recovery path show up as wall-clock.
fn chaos_recovery_scenario() -> Scenario {
    let mut s = reduced_scenario().named("chaos-recovery-v1");
    s.chaos = Some(FaultPlan {
        transfer_loss_prob: 0.15,
        link_cut_per_hour: 4.0,
        link_cut_secs: 30.0,
        ..FaultPlan::default()
    });
    s.recovery = Some(RecoveryPolicy::default());
    s
}

/// The pinned large-world baseline: 1000 nodes at the reduced scenario's
/// density (10 km²) over 30 simulated minutes — big enough that contact
/// detection and the batched transfer pass dominate, short enough to run
/// on every capture.
fn perf_large_scenario() -> Scenario {
    let mut s = reduced_scenario().named("perf-large-v1");
    s.nodes = 1000;
    s.area_km2 = 10.0;
    s.duration_secs = 1800.0;
    s.message_ttl_secs = 900.0;
    s
}

/// The pinned huge-world baseline: 100k nodes at the same density
/// (1000 km²) over 10 simulated minutes — the scale the event-driven
/// contact core exists for. One seed, short horizon: the row costs about
/// a large-row capture per thread count and exercises region sharding at
/// a population where a full pairwise sweep would be hopeless.
fn perf_huge_scenario() -> Scenario {
    let mut s = reduced_scenario().named("perf-huge-v1");
    s.nodes = 100_000;
    s.area_km2 = 1000.0;
    s.duration_secs = 600.0;
    s.message_ttl_secs = 300.0;
    s
}

/// The quarter-million-node row: same density as `perf-huge-v1` over a
/// shorter horizon, pushing the settlement wheel and the per-node table
/// footprint toward the 1M-node target. Besides throughput, the row
/// records protocol state bytes per node (interest + reputation tables,
/// measured via the arena gauges) and the gate holds that footprint
/// under [`HUGE2_BYTES_PER_NODE_CEILING`].
fn perf_huge2_scenario() -> Scenario {
    let mut s = reduced_scenario().named("perf-huge-v2");
    s.nodes = 250_000;
    s.area_km2 = 2500.0;
    s.duration_secs = 300.0;
    s.message_ttl_secs = 150.0;
    s
}

/// The pinned sweep-executor baseline: a miniature figure grid (selfish
/// fractions × both arms × seeds) of single-threaded kernels, so the row
/// measures pool scaling and cache hits rather than intra-cell sharding.
/// Pinned like the other scenarios: reshaping the grid requires a rename.
fn sweep_suite_plan(quick: bool) -> Vec<Cell> {
    let seeds: Vec<u64> = if quick {
        vec![1, 2, 3]
    } else {
        vec![1, 2, 3, 4, 5]
    };
    let mut cells = Vec::new();
    for selfish in [0.0, 0.2, 0.4, 0.6] {
        let mut s = reduced_scenario().named("sweep-suite-v1");
        s.nodes = 20;
        s.area_km2 = 0.2;
        s.duration_secs = 1200.0;
        s.message_interval_secs = 30.0;
        s.message_ttl_secs = 900.0;
        s.selfish_fraction = selfish;
        s.threads = Some(1);
        for arm in Arm::BOTH {
            for &seed in &seeds {
                cells.push(Cell::arm(s.clone(), arm, seed));
            }
        }
    }
    cells
}

/// One captured baseline row. `Deserialize` doubles as the committed-
/// baseline reader for `--check`; `threads`/`mode` are optional there so
/// pre-sweep baselines (which had neither field) still parse.
#[derive(Debug, Clone, Deserialize)]
struct BenchRow {
    name: String,
    #[serde(default)]
    threads: Option<u64>,
    #[serde(default)]
    mode: Option<String>,
    #[allow(dead_code)]
    #[serde(default)]
    wall_secs: f64,
    #[allow(dead_code)]
    #[serde(default)]
    sim_secs_per_sec: f64,
    events_per_sec: f64,
    #[serde(default)]
    steps: u64,
    #[serde(default)]
    contacts: u64,
    #[serde(default)]
    relays: u64,
    #[serde(default)]
    retried: u64,
    #[serde(default)]
    resumed: u64,
    /// Sweep rows only: cells in the suite plan (0 on kernel rows).
    #[serde(default)]
    cells: u64,
    /// Sweep rows only: cells completed per wall second.
    #[serde(default)]
    cells_per_sec: f64,
    /// Protocol state bytes per node (interest + reputation tables via
    /// the arena gauges); 0 when the gauges are absent.
    #[serde(default)]
    bytes_per_node: f64,
    /// Free-form annotation (e.g. why the scaling probe did not run).
    #[serde(default)]
    note: Option<String>,
}

impl BenchRow {
    fn threads(&self) -> u64 {
        self.threads.unwrap_or(1)
    }

    /// Hand-formatted to keep the committed file's row style stable. The
    /// sweep-only columns appear only on sweep rows so kernel rows keep
    /// their historical shape.
    fn to_json(&self) -> String {
        let mut sweep_cols = if self.cells > 0 {
            format!(
                ",\n    \"cells\": {},\n    \"cells_per_sec\": {:.3}",
                self.cells, self.cells_per_sec
            )
        } else {
            String::new()
        };
        if self.bytes_per_node > 0.0 {
            sweep_cols.push_str(&format!(
                ",\n    \"bytes_per_node\": {:.3}",
                self.bytes_per_node
            ));
        }
        if let Some(note) = &self.note {
            sweep_cols.push_str(&format!(
                ",\n    \"note\": {}",
                serde_json::to_string(note).expect("string encodes")
            ));
        }
        format!(
            "{{\n    \"name\": {},\n    \"threads\": {},\n    \"mode\": {},\n    \
             \"wall_secs\": {:.6},\n    \"sim_secs_per_sec\": {:.3},\n    \
             \"events_per_sec\": {:.3},\n    \"steps\": {},\n    \"contacts\": {},\n    \
             \"relays\": {},\n    \"retried\": {},\n    \"resumed\": {}{sweep_cols}\n  }}",
            serde_json::to_string(&self.name).expect("string encodes"),
            self.threads(),
            serde_json::to_string(self.mode.as_deref().unwrap_or("full")).expect("string encodes"),
            self.wall_secs,
            self.sim_secs_per_sec,
            self.events_per_sec,
            self.steps,
            self.contacts,
            self.relays,
            self.retried,
            self.resumed,
        )
    }
}

/// Run one pinned scenario at one thread count over `seeds`.
fn bench_row(scenario: &Scenario, threads: usize, seeds: &[u64], quick: bool) -> BenchRow {
    let mut scenario = scenario.clone();
    scenario.threads = Some(threads);
    if quick {
        // A sixth of the pinned duration: enough steps for a stable rate,
        // short enough for a per-commit CI gate. Quick rows are labeled
        // (`mode`) because their absolute numbers trend slightly below a
        // full capture's.
        scenario.duration_secs /= 6.0;
        scenario.message_ttl_secs = scenario.message_ttl_secs.min(scenario.duration_secs / 2.0);
    }
    let label = format!(
        "{} [threads={threads}{}]",
        scenario.name,
        if quick { ", quick" } else { "" }
    );
    dtn_bench::print_scenario_header("kernel performance baseline", &scenario, seeds);
    println!("row: {label}");

    // Sequential, one profiled run per seed: wall-clock must measure the
    // kernel, not scheduler contention between concurrent runs.
    let mut report: Option<PerfReport> = None;
    let mut relays = 0u64;
    let mut retried = 0u64;
    let mut resumed = 0u64;
    for &seed in seeds {
        let (run, perf) = run_once_perf(&scenario, Arm::Incentive, seed);
        relays += run.summary.relays_completed;
        retried += run.summary.transfers_retried;
        resumed += run.summary.transfers_resumed;
        println!(
            "seed {seed}: {:.2}s wall, {:.0} ev/s, {} relays",
            perf.wall_secs, perf.events_per_sec, run.summary.relays_completed
        );
        match &mut report {
            Some(r) => r.merge(&perf),
            None => report = Some(perf),
        }
    }
    let report = report.expect("at least one seed");
    let contacts = report.metrics.counter("kernel.contacts_up");
    // Per-node protocol table footprint from the arena gauges (end-of-run
    // values; seeds merge by max, so multi-seed rows report the widest).
    let table_bytes = report.metrics.gauge("arena.interest_bytes").unwrap_or(0.0)
        + report.metrics.gauge("arena.reputation_bytes").unwrap_or(0.0);
    let bytes_per_node = table_bytes / scenario.nodes as f64;
    if bytes_per_node > 0.0 {
        println!("state: {bytes_per_node:.1} table bytes/node ({table_bytes:.0} total)");
    }

    println!("\n{}", report.render());
    assert!(
        report.events_per_sec > 0.0 && report.wall_secs > 0.0,
        "profiled run produced no throughput"
    );

    BenchRow {
        name: scenario.name.clone(),
        threads: Some(threads as u64),
        mode: Some(if quick { "quick" } else { "full" }.into()),
        wall_secs: report.wall_secs,
        sim_secs_per_sec: report.sim_secs_per_sec,
        events_per_sec: report.events_per_sec,
        steps: report.steps,
        contacts,
        relays,
        retried,
        resumed,
        cells: 0,
        cells_per_sec: 0.0,
        bytes_per_node,
        note: None,
    }
}

/// Run the pinned sweep suite once at the given worker count and time it.
/// The memo must be cleared by the caller for cold rows; leaving it
/// populated is what makes the warm row a pure cache measurement.
fn sweep_suite_row(name: &str, workers: usize, plan: &[Cell], quick: bool) -> BenchRow {
    sweep::set_workers(workers);
    sweep::reset_metrics();
    let started = Instant::now();
    let results = run_cells(plan);
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(results.len(), plan.len(), "executor returned the full plan");
    let m = sweep::metrics();
    let relays: u64 = results.iter().map(|r| r.summary.relays_completed).sum();
    let retried: u64 = results.iter().map(|r| r.summary.transfers_retried).sum();
    let resumed: u64 = results.iter().map(|r| r.summary.transfers_resumed).sum();
    let sim_secs: f64 = plan.iter().map(|c| c.scenario.duration_secs).sum();
    let cells_per_sec = plan.len() as f64 / wall;
    println!(
        "row: {name} [workers={workers}{}]: {} cells in {wall:.2}s \
         ({cells_per_sec:.1} cells/s, {} run, {} cache hits)",
        if quick { ", quick" } else { "" },
        plan.len(),
        m.cells_run,
        m.cache_hits,
    );
    BenchRow {
        name: name.into(),
        threads: Some(workers as u64),
        mode: Some(if quick { "quick" } else { "full" }.into()),
        wall_secs: wall,
        sim_secs_per_sec: sim_secs / wall,
        // Mirrors cells_per_sec so the committed comparison treats sweep
        // rows like any other row (see the module docs).
        events_per_sec: cells_per_sec,
        steps: 0,
        contacts: 0,
        relays,
        retried,
        resumed,
        cells: plan.len() as u64,
        cells_per_sec,
        bytes_per_node: 0.0,
        note: None,
    }
}

/// The sweep suite's relative floors, computed within one fresh capture:
/// the cold pool must beat the cold single worker, the warm memo must
/// beat them both. Returns failures (empty = floors clear or not
/// applicable on this machine).
fn check_sweep_floors(fresh: &[BenchRow]) -> Vec<String> {
    let rate = |name: &str, min_threads: u64| {
        fresh
            .iter()
            .find(|r| r.name == name && r.threads() >= min_threads)
            .map(|r| (r.threads(), r.cells_per_sec))
    };
    let Some((_, cold1)) = rate("sweep-suite-v1", 1).filter(|&(t, _)| t == 1) else {
        return vec!["sweep-suite-v1 [threads=1] row missing from the capture".into()];
    };
    let mut failures = Vec::new();
    match rate("sweep-suite-v1", 2) {
        Some((workers, cold_n)) if workers >= 4 => {
            let ratio = cold_n / cold1;
            if ratio < SWEEP_COLD_SPEEDUP {
                failures.push(format!(
                    "sweep-suite-v1 [workers={workers}]: cold speedup {ratio:.2}x \
                     below the {SWEEP_COLD_SPEEDUP}x floor ({cold_n:.1} vs {cold1:.1} cells/s)"
                ));
            } else {
                println!(
                    "[check] sweep-suite-v1 [workers={workers}]: cold speedup \
                     {ratio:.2}x clears the {SWEEP_COLD_SPEEDUP}x floor"
                );
            }
        }
        // Fewer than 4 cores: the pool cannot be expected to hit 2x.
        _ => println!("[check] sweep-suite-v1: < 4 workers available, cold floor skipped"),
    }
    match fresh.iter().find(|r| r.name == "sweep-suite-v1-warm") {
        Some(warm) => {
            let ratio = warm.cells_per_sec / cold1;
            if ratio < SWEEP_WARM_SPEEDUP {
                failures.push(format!(
                    "sweep-suite-v1-warm: warm speedup {ratio:.2}x below the \
                     {SWEEP_WARM_SPEEDUP}x floor ({:.1} vs {cold1:.1} cells/s)",
                    warm.cells_per_sec
                ));
            } else {
                println!(
                    "[check] sweep-suite-v1-warm: warm speedup {ratio:.2}x \
                     clears the {SWEEP_WARM_SPEEDUP}x floor"
                );
            }
        }
        None => failures.push("sweep-suite-v1-warm row missing from the capture".into()),
    }
    failures
}

/// The regression gate: every fresh row must stay within `tolerance` of
/// the committed row with the same `(name, threads)`, and the medium
/// scenario's sharded rows must clear the parallel-step floor. Returns
/// the list of failures (empty = gate passes).
fn check_rows(fresh: &[BenchRow], baseline: &[BenchRow], tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for row in fresh {
        let label = format!("{} [threads={}]", row.name, row.threads());
        if row.name.ends_with("-warm") {
            // Memo hits complete in microseconds; their wall-clock rate is
            // machine noise. The warm row is gated by its relative floor
            // (check_sweep_floors), not by the committed baseline.
            println!("[check] {label}: warm row, committed comparison skipped");
            continue;
        }
        match baseline
            .iter()
            .find(|b| b.name == row.name && b.threads() == row.threads())
        {
            Some(b) => {
                let floor = (1.0 - tolerance) * b.events_per_sec;
                if row.events_per_sec < floor {
                    failures.push(format!(
                        "{label}: {:.1} ev/s fell below {:.1} \
                         (committed {:.1} ev/s - {:.0}% tolerance)",
                        row.events_per_sec,
                        floor,
                        b.events_per_sec,
                        tolerance * 100.0
                    ));
                } else {
                    println!(
                        "[check] {label}: {:.1} ev/s vs committed {:.1} — ok",
                        row.events_per_sec, b.events_per_sec
                    );
                }
            }
            None => println!("[check] {label}: no committed row, skipped"),
        }
        if row.name == "perf-medium-v1" && row.threads() >= 4 {
            let floor = PARALLEL_FLOOR * SEED_MEDIUM_EV_PER_SEC;
            if row.events_per_sec < floor {
                failures.push(format!(
                    "{label}: {:.1} ev/s misses the parallel-step floor {:.1} \
                     ({PARALLEL_FLOOR}x the pre-optimization baseline {SEED_MEDIUM_EV_PER_SEC})",
                    row.events_per_sec, floor
                ));
            } else {
                println!(
                    "[check] {label}: {:.1} ev/s clears the {PARALLEL_FLOOR}x floor {:.1}",
                    row.events_per_sec, floor
                );
            }
        }
        if row.name == "perf-large-v1" && row.threads() == 1 {
            let floor = EVENT_CORE_FLOOR * SEED_LARGE_EV_PER_SEC;
            if row.events_per_sec < floor {
                failures.push(format!(
                    "{label}: {:.1} ev/s misses the event-core floor {:.1} \
                     ({EVENT_CORE_FLOOR}x the time-stepped baseline {SEED_LARGE_EV_PER_SEC})",
                    row.events_per_sec, floor
                ));
            } else {
                println!(
                    "[check] {label}: {:.1} ev/s clears the {EVENT_CORE_FLOOR}x floor {:.1}",
                    row.events_per_sec, floor
                );
            }
        }
        if row.name == "perf-huge-v2" && row.threads() == 1 {
            if row.events_per_sec < HUGE2_EV_FLOOR {
                failures.push(format!(
                    "{label}: {:.1} ev/s misses the absolute floor {HUGE2_EV_FLOOR}",
                    row.events_per_sec
                ));
            } else {
                println!(
                    "[check] {label}: {:.1} ev/s clears the absolute floor {HUGE2_EV_FLOOR}",
                    row.events_per_sec
                );
            }
            if row.bytes_per_node <= 0.0 {
                failures.push(format!(
                    "{label}: bytes_per_node missing — the arena gauges did not export"
                ));
            } else if row.bytes_per_node > HUGE2_BYTES_PER_NODE_CEILING {
                failures.push(format!(
                    "{label}: {:.1} table bytes/node exceeds the \
                     {HUGE2_BYTES_PER_NODE_CEILING} ceiling",
                    row.bytes_per_node
                ));
            } else {
                println!(
                    "[check] {label}: {:.1} table bytes/node under the \
                     {HUGE2_BYTES_PER_NODE_CEILING} ceiling",
                    row.bytes_per_node
                );
            }
        }
    }
    failures
}

/// The huge row's thread-scaling probe, computed within one fresh
/// capture: with >= 4 cores available, threads = 4 must beat threads = 1
/// outright — region parallelism that loses to the serial path is a
/// regression even if both rates clear their committed floors. On
/// smaller machines (CI runners are often 1–2 cores) the probe is
/// skipped: the sharded row cannot be expected to win without cores.
fn check_thread_scaling(fresh: &[BenchRow]) -> Vec<String> {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if cores < 4 {
        println!("[check] perf-huge-v1 thread scaling: {cores} core(s) available, skipped");
        return Vec::new();
    }
    let rate = |threads: u64| {
        fresh
            .iter()
            .find(|r| r.name == "perf-huge-v1" && r.threads() == threads)
            .map(|r| r.events_per_sec)
    };
    let (Some(serial), Some(sharded)) = (rate(1), rate(4)) else {
        return vec!["perf-huge-v1 rows missing from the capture".into()];
    };
    if sharded <= serial {
        return vec![format!(
            "perf-huge-v1: threads=4 at {sharded:.1} ev/s does not beat \
             threads=1 at {serial:.1} ev/s ({cores} cores available)"
        )];
    }
    println!(
        "[check] perf-huge-v1: threads=4 beats threads=1 \
         ({sharded:.1} vs {serial:.1} ev/s, {:.2}x)",
        sharded / serial
    );
    Vec::new()
}

fn main() {
    let mut seed_count = 3usize;
    let mut quick = false;
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.25f64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seed_count = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| panic!("--seeds needs a positive integer"));
            }
            "--quick" => quick = true,
            "--check" => {
                i += 1;
                check_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| panic!("--check needs a baseline path"))
                        .clone(),
                );
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|t| (0.0..1.0).contains(t))
                    .unwrap_or_else(|| panic!("--tolerance needs a fraction in [0, 1)"));
            }
            other => panic!(
                "unknown flag {other}; usage: perf [--seeds N] [--quick] \
                 [--check BASELINE.json] [--tolerance F]"
            ),
        }
        i += 1;
    }

    // Read the committed baseline before the capture overwrites it.
    let baseline: Option<Vec<BenchRow>> = check_path.as_ref().map(|path| {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"))
    });

    let seeds = seeds_for(seed_count);
    let mut rows: Vec<BenchRow> = Vec::new();
    let medium = perf_scenario();
    for threads in MEDIUM_SWEEP {
        rows.push(bench_row(&medium, threads, &seeds, quick));
    }
    rows.push(bench_row(&chaos_recovery_scenario(), 1, &seeds, quick));
    let large = perf_large_scenario();
    // The large world is ~10x the medium per-step cost; one seed keeps
    // the capture per-commit affordable without moving the rate.
    let large_seeds = &seeds[..1];
    for threads in LARGE_SWEEP {
        rows.push(bench_row(&large, threads, large_seeds, quick));
    }
    let huge = perf_huge_scenario();
    for threads in HUGE_SWEEP {
        rows.push(bench_row(&huge, threads, large_seeds, quick));
    }
    // The quarter-million-node row runs serial only: it exists to bound
    // per-node state and single-core throughput at scale, and one thread
    // count keeps the capture affordable.
    rows.push(bench_row(&perf_huge2_scenario(), 1, large_seeds, quick));

    // Record the thread-scaling probe's applicability on the sharded huge
    // row even when `--check` is not running: a < 4-core machine cannot
    // run the probe, and the capture should say so in the JSON rather
    // than silently self-skip.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if cores < 4 {
        if let Some(row) = rows
            .iter_mut()
            .find(|r| r.name == "perf-huge-v1" && r.threads() == 4)
        {
            row.note = Some(format!("scaling probe skipped: {cores} cores"));
        }
    }

    // The sweep-executor suite: cold at 1 worker, cold at min(8, cores)
    // workers, then warm over the memo the second pass populated. The
    // disk cache stays off here — this row measures the pool and the
    // in-process memo, not filesystem throughput.
    let plan = sweep_suite_plan(quick);
    let pool = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1);
    sweep::set_cache_dir(None);
    sweep::clear_memo();
    rows.push(sweep_suite_row("sweep-suite-v1", 1, &plan, quick));
    if pool > 1 {
        sweep::clear_memo();
        rows.push(sweep_suite_row("sweep-suite-v1", pool, &plan, quick));
    }
    rows.push(sweep_suite_row("sweep-suite-v1-warm", pool, &plan, quick));
    sweep::set_workers(0);

    let body: Vec<String> = rows.iter().map(BenchRow::to_json).collect();
    let json = format!("[\n  {}\n]\n", body.join(",\n  "));
    let path = "BENCH_kernel.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("[json] {path}");

    if let Some(baseline) = baseline {
        let mut failures = check_rows(&rows, &baseline, tolerance);
        failures.extend(check_thread_scaling(&rows));
        failures.extend(check_sweep_floors(&rows));
        if !failures.is_empty() {
            eprintln!("\nperf regression gate FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        println!("[check] gate passed ({} rows)", rows.len());
    }
}
