//! Ablation study (ours, beyond the paper): which component of the
//! mechanism buys what?
//!
//! At a fixed 40% selfish population, the full mechanism is compared
//! against variants with one component disabled: no DRM (awards ignore
//! reputation, no gossip), no enrichment (tags frozen at the source), no
//! hardware factor (promises from software factors only), and the
//! ChitChat baseline (everything off).

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::ablation::run(&cli);
    cli.enforce_expect_warm();
}
