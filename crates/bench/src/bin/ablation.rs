//! Ablation study (ours, beyond the paper): which component of the
//! mechanism buys what?
//!
//! At a fixed 40% selfish population, the full mechanism is compared
//! against variants with one component disabled: no DRM (awards ignore
//! reputation, no gossip), no enrichment (tags frozen at the source), no
//! hardware factor (promises from software factors only), and the
//! ChitChat baseline (everything off).

use dtn_bench::{print_scenario_header, write_csv, Cli};
use dtn_sim::stats::RunSummary;
use dtn_workloads::runner::run_once;
use dtn_workloads::scenario::{Arm, Scenario};

fn variant(base: &Scenario, name: &str, f: impl Fn(&mut Scenario)) -> (String, Scenario) {
    let mut s = base.clone().named(name);
    f(&mut s);
    (name.to_owned(), s)
}

fn mean_runs(scenario: &Scenario, arm: Arm, seeds: &[u64]) -> (RunSummary, f64) {
    let runs: Vec<_> = seeds.iter().map(|&s| run_once(scenario, arm, s)).collect();
    let awarded = runs.iter().map(|r| r.protocol.tokens_awarded).sum::<f64>() / runs.len() as f64;
    let summaries: Vec<RunSummary> = runs.into_iter().map(|r| r.summary).collect();
    (RunSummary::mean_of(&summaries), awarded)
}

fn main() {
    let cli = Cli::parse();
    let mut base = cli.scale.base_scenario();
    base.selfish_fraction = 0.4;
    base.malicious_fraction = 0.1;
    print_scenario_header(
        "Ablation — component contributions at 40% selfish, 10% malicious",
        &base,
        &cli.seeds,
    );

    let variants = vec![
        variant(&base, "full", |_| {}),
        variant(&base, "no-drm", |s| s.protocol.drm_enabled = false),
        variant(&base, "no-enrichment", |s| {
            s.protocol.enrichment_enabled = false
        }),
        variant(&base, "no-hardware", |s| {
            s.protocol.hardware_factor_enabled = false;
        }),
    ];

    println!(
        "{:>14} | {:>7} | {:>8} | {:>9} | {:>9} | {:>10}",
        "variant", "MDR", "high MDR", "relays", "bonus", "tok moved"
    );
    println!("{}", "-".repeat(72));
    let mut rows = Vec::new();
    for (name, scenario) in &variants {
        let (summary, awarded) = mean_runs(scenario, Arm::Incentive, &cli.seeds);
        let high = summary
            .delivery_ratio_by_priority
            .get(&1)
            .copied()
            .unwrap_or(0.0);
        println!(
            "{:>14} | {:>7.3} | {:>8.3} | {:>9} | {:>9} | {:>10.1}",
            name,
            summary.delivery_ratio,
            high,
            summary.relays_completed,
            summary.bonus_deliveries,
            awarded
        );
        rows.push(format!(
            "{name},{:.6},{:.6},{},{},{:.1}",
            summary.delivery_ratio,
            high,
            summary.relays_completed,
            summary.bonus_deliveries,
            awarded
        ));
    }
    // The all-off baseline for reference.
    let (cc, _) = mean_runs(&base, Arm::ChitChat, &cli.seeds);
    let high = cc
        .delivery_ratio_by_priority
        .get(&1)
        .copied()
        .unwrap_or(0.0);
    println!(
        "{:>14} | {:>7.3} | {:>8.3} | {:>9} | {:>9} | {:>10}",
        "chitchat", cc.delivery_ratio, high, cc.relays_completed, cc.bonus_deliveries, "-"
    );
    rows.push(format!(
        "chitchat,{:.6},{:.6},{},{},0",
        cc.delivery_ratio, high, cc.relays_completed, cc.bonus_deliveries
    ));
    write_csv(
        "ablation",
        "variant,mdr,mdr_high,relays,bonus_deliveries,tokens_awarded",
        &rows,
    );
}
