//! Figure 5.6 — Priority-segmented MDR at 20% and 40% selfish nodes.
//!
//! The workload follows the paper's source mix: 50% of nodes generate
//! high-quality/high-priority (larger) messages, 30% medium, 20% low.
//! Expected shape (Paper I, §5.F): the incentive mechanism delivers a
//! higher ratio of *high-priority* messages than ChitChat in both
//! conditions — the mechanism forwards high-priority/high-quality first
//! and evicts low-priority copies under pressure, and such deliveries earn
//! larger awards.

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::fig5_6::run(&cli);
    cli.enforce_expect_warm();
}
