//! Figure 5.6 — Priority-segmented MDR at 20% and 40% selfish nodes.
//!
//! The workload follows the paper's source mix: 50% of nodes generate
//! high-quality/high-priority (larger) messages, 30% medium, 20% low.
//! Expected shape (Paper I, §5.F): the incentive mechanism delivers a
//! higher ratio of *high-priority* messages than ChitChat in both
//! conditions — the mechanism forwards high-priority/high-quality first
//! and evicts low-priority copies under pressure, and such deliveries earn
//! larger awards.

use dtn_bench::{print_scenario_header, write_csv, Cli};
use dtn_workloads::paper::priority_sweep;
use dtn_workloads::runner::compare_arms;

fn main() {
    let cli = Cli::parse();
    let sweep = priority_sweep(cli.scale);
    print_scenario_header(
        "Fig 5.6 — priority-segmented MDR vs selfish percentage",
        &sweep[0],
        &cli.seeds,
    );
    println!(
        "{:>9} | {:>9} | {:>8} | {:>8} | {:>8}",
        "selfish %", "arm", "high", "medium", "low"
    );
    println!("{}", "-".repeat(55));
    let mut rows = Vec::new();
    for scenario in &sweep {
        let pct = (scenario.selfish_fraction * 100.0).round();
        let cmp = compare_arms(scenario, &cli.seeds);
        for (label, summary) in [("Incentive", &cmp.incentive), ("ChitChat", &cmp.chitchat)] {
            let by = &summary.delivery_ratio_by_priority;
            let get = |level: u8| by.get(&level).copied().unwrap_or(0.0);
            println!(
                "{:>9} | {:>9} | {:>8.3} | {:>8.3} | {:>8.3}",
                pct,
                label,
                get(1),
                get(2),
                get(3)
            );
            rows.push(format!(
                "{pct},{label},{:.6},{:.6},{:.6}",
                get(1),
                get(2),
                get(3)
            ));
        }
    }
    write_csv(
        "fig5_6",
        "selfish_pct,arm,mdr_high,mdr_medium,mdr_low",
        &rows,
    );
}
