//! Baseline routing comparison (ours, beyond the paper): every router in
//! the workspace on the identical reduced-scale workload — the
//! delivery-vs-traffic trade-off landscape the thesis surveys in §1.1/§1.2.
//!
//! Epidemic is the MDR ceiling and traffic worst case; Direct Delivery is
//! the traffic floor; ChitChat and the mechanism sit in between; CEDO
//! serves explicitly requested keywords only.

use dtn_bench::{print_scenario_header, write_csv, Cli};
use dtn_routing::prelude::*;
use dtn_sim::stats::RunSummary;
use dtn_sim::time::SimTime;
use dtn_workloads::prelude::*;

fn run_with<P, F>(scenario: &dtn_workloads::scenario::Scenario, seed: u64, make: F) -> RunSummary
where
    P: dtn_sim::protocol::Protocol,
    F: FnOnce(&Population, &[dtn_sim::kernel::ScheduledMessage]) -> P,
{
    let mut sim = dtn_workloads::runner::build_with_protocol(scenario, seed, make);
    sim.run_until(SimTime::from_secs(scenario.duration_secs))
}

fn directory_from(pop: &Population) -> InterestDirectory {
    pop.interest_directory()
}

fn main() {
    let cli = Cli::parse();
    let mut scenario = cli.scale.base_scenario();
    scenario.selfish_fraction = 0.0;
    scenario = scenario.named("baselines");
    print_scenario_header(
        "Baseline comparison — identical workload, every router",
        &scenario,
        &cli.seeds[..1],
    );
    let seed = cli.seeds[0];

    let mut rows: Vec<(String, RunSummary)> = Vec::new();

    rows.push((
        "incentive".into(),
        run_once(&scenario, Arm::Incentive, seed).summary,
    ));
    rows.push((
        "chitchat".into(),
        run_once(&scenario, Arm::ChitChat, seed).summary,
    ));
    rows.push((
        "epidemic".into(),
        run_with(&scenario, seed, |pop, _| {
            EpidemicRouter::new(directory_from(pop))
        }),
    ));
    rows.push((
        "direct".into(),
        run_with(&scenario, seed, |pop, _| {
            DirectDeliveryRouter::new(directory_from(pop))
        }),
    ));
    rows.push((
        "spray&wait(8)".into(),
        run_with(&scenario, seed, |pop, _| {
            SprayAndWaitRouter::new(directory_from(pop), 8)
        }),
    ));
    rows.push((
        "two-hop".into(),
        run_with(&scenario, seed, |pop, _| {
            TwoHopRelayRouter::new(directory_from(pop))
        }),
    ));
    rows.push((
        "prophet".into(),
        run_with(&scenario, seed, |pop, _| {
            ProphetRouter::new(directory_from(pop), ProphetParams::default())
        }),
    ));
    rows.push((
        "cedo".into(),
        run_with(&scenario, seed, |pop, schedule| {
            // CEDO is pull-based: turn each expected (message, destination)
            // pair into a keyword request issued at creation time.
            let mut router = CedoRouter::new(pop.interests.len());
            for m in schedule {
                for &dest in &m.expected_destinations {
                    for &kw in &m.source_tags {
                        if pop.interests[dest.index()].contains(&kw) {
                            router.schedule_request(m.at, dest, kw, m.ttl_secs);
                        }
                    }
                }
            }
            router
        }),
    ));

    println!(
        "{:>14} | {:>7} | {:>9} | {:>12} | {:>9} | {:>9}",
        "router", "MDR", "relays", "bytes (MB)", "latency s", "aborted"
    );
    println!("{}", "-".repeat(75));
    let mut csv = Vec::new();
    for (name, s) in &rows {
        println!(
            "{:>14} | {:>7.3} | {:>9} | {:>12.1} | {:>9.0} | {:>9}",
            name,
            s.delivery_ratio,
            s.relays_completed,
            s.relay_bytes as f64 / 1e6,
            s.mean_latency_secs,
            s.transfers_aborted
        );
        csv.push(format!(
            "{name},{:.6},{},{},{:.1},{}",
            s.delivery_ratio,
            s.relays_completed,
            s.relay_bytes,
            s.mean_latency_secs,
            s.transfers_aborted
        ));
    }
    write_csv(
        "baselines",
        "router,mdr,relays,bytes,latency_s,aborted",
        &csv,
    );
}
