//! Baseline routing comparison (ours, beyond the paper): every router in
//! the workspace on the identical reduced-scale workload — the
//! delivery-vs-traffic trade-off landscape the thesis surveys in §1.1/§1.2.
//!
//! Epidemic is the MDR ceiling and traffic worst case; Direct Delivery is
//! the traffic floor; ChitChat and the mechanism sit in between; CEDO
//! serves explicitly requested keywords only.

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::baselines::run(&cli);
    cli.enforce_expect_warm();
}
