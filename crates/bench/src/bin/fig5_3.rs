//! Figure 5.3 — Initial tokens' variance: MDR vs selfish percentage for
//! several initial token endowments.
//!
//! Expected shape (Paper I, §5.C): MDR falls with the selfish percentage
//! at every endowment, and rises with the endowment at every selfish
//! percentage — more starting tokens delay exhaustion, so destinations
//! keep receiving longer.

use dtn_bench::{print_scenario_header, write_csv, Cli};
use dtn_workloads::paper::token_sweep;
use dtn_workloads::runner::run_seeds;
use dtn_workloads::scenario::Arm;

fn main() {
    let cli = Cli::parse();
    let sweep = token_sweep(cli.scale);
    print_scenario_header(
        "Fig 5.3 — MDR vs selfish % under different initial token endowments",
        &sweep[0].1[0],
        &cli.seeds,
    );
    let header: Vec<String> = sweep
        .iter()
        .map(|(tokens, _)| format!("{tokens:>7.0} tok"))
        .collect();
    println!("{:>9} | {}", "selfish %", header.join(" | "));
    println!("{}", "-".repeat(12 + 14 * sweep.len()));

    let points = sweep[0].1.len();
    let mut rows = Vec::new();
    for idx in 0..points {
        let pct = (sweep[0].1[idx].selfish_fraction * 100.0).round();
        let mut cells = Vec::new();
        let mut csv = format!("{pct}");
        for (_, scenarios) in &sweep {
            let summary = run_seeds(&scenarios[idx], Arm::Incentive, &cli.seeds);
            cells.push(format!("{:>11.3}", summary.delivery_ratio));
            csv.push_str(&format!(",{:.6}", summary.delivery_ratio));
        }
        println!("{pct:>9} | {}", cells.join(" | "));
        rows.push(csv);
    }
    let csv_header = std::iter::once("selfish_pct".to_owned())
        .chain(sweep.iter().map(|(t, _)| format!("mdr_tokens_{t:.0}")))
        .collect::<Vec<_>>()
        .join(",");
    write_csv("fig5_3", &csv_header, &rows);
}
