//! Figure 5.3 — Initial tokens' variance: MDR vs selfish percentage for
//! several initial token endowments.
//!
//! Expected shape (Paper I, §5.C): MDR falls with the selfish percentage
//! at every endowment, and rises with the endowment at every selfish
//! percentage — more starting tokens delay exhaustion, so destinations
//! keep receiving longer.

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::fig5_3::run(&cli);
    cli.enforce_expect_warm();
}
