//! Figure 5.2 — Percentage of reduced traffic over ChitChat.
//!
//! Same sweep as Fig. 5.1; the reported quantity is the relative saving in
//! completed message transfers. Expected shape (Paper I, §5.B): "the
//! higher is the selfish nodes %, more the traffic is reduced" — selfish
//! nodes exhaust their tokens and stop receiving, which prunes entire
//! downstream forwarding trees. At low selfish percentages enrichment's
//! extra destinations offset part of the saving (documented in
//! EXPERIMENTS.md).

use dtn_bench::{print_scenario_header, write_csv, Cli};
use dtn_workloads::paper::selfish_sweep;
use dtn_workloads::runner::compare_arms;

fn main() {
    let cli = Cli::parse();
    let sweep = selfish_sweep(cli.scale);
    print_scenario_header(
        "Fig 5.2 — % of reduced traffic over ChitChat vs selfish nodes",
        &sweep[0],
        &cli.seeds,
    );
    println!(
        "{:>9} | {:>15} | {:>15} | {:>11}",
        "selfish %", "Incentive relays", "ChitChat relays", "reduction %"
    );
    println!("{}", "-".repeat(60));
    let mut rows = Vec::new();
    for scenario in &sweep {
        let pct = (scenario.selfish_fraction * 100.0).round();
        let cmp = compare_arms(scenario, &cli.seeds);
        println!(
            "{:>9} | {:>15} | {:>15} | {:>+11.1}",
            pct,
            cmp.incentive.relays_completed,
            cmp.chitchat.relays_completed,
            cmp.traffic_reduction_pct()
        );
        rows.push(format!(
            "{pct},{},{},{:.4}",
            cmp.incentive.relays_completed,
            cmp.chitchat.relays_completed,
            cmp.traffic_reduction_pct()
        ));
    }
    write_csv(
        "fig5_2",
        "selfish_pct,relays_incentive,relays_chitchat,reduction_pct",
        &rows,
    );
}
