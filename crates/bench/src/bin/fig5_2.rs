//! Figure 5.2 — Percentage of reduced traffic over ChitChat.
//!
//! Same sweep as Fig. 5.1; the reported quantity is the relative saving in
//! completed message transfers. Expected shape (Paper I, §5.B): "the
//! higher is the selfish nodes %, more the traffic is reduced" — selfish
//! nodes exhaust their tokens and stop receiving, which prunes entire
//! downstream forwarding trees. At low selfish percentages enrichment's
//! extra destinations offset part of the saving (documented in
//! EXPERIMENTS.md).

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::fig5_2::run(&cli);
    cli.enforce_expect_warm();
}
