//! Network-lifetime extension experiment (ours, beyond the paper).
//!
//! The paper's entire motivation is battery scarcity, but its evaluation
//! runs on ideal power. This experiment gives every node a finite battery
//! and measures what the mechanism's traffic savings buy in *lifetime*:
//! delivery ratio and the number of battery-dead radios at the end of the
//! run, for several battery budgets, with a 40% selfish population.

use dtn_bench::{print_scenario_header, write_csv, Cli};
use dtn_sim::time::SimTime;
use dtn_workloads::prelude::*;

fn main() {
    let cli = Cli::parse();
    let mut base = cli.scale.base_scenario();
    base.selfish_fraction = 0.4;
    base = base.named("lifetime");
    print_scenario_header(
        "Network lifetime under finite batteries (extension)",
        &base,
        &cli.seeds,
    );

    println!(
        "{:>12} | {:>9} | {:>13} | {:>13} | {:>10} | {:>10}",
        "battery (J)", "arm", "MDR", "relays", "dead nodes", "bytes (MB)"
    );
    println!("{}", "-".repeat(82));
    let mut rows = Vec::new();
    for budget in [50.0f64, 150.0, 400.0, f64::INFINITY] {
        for arm in Arm::BOTH {
            let mut dead_total = 0usize;
            let mut runs = Vec::new();
            for &seed in &cli.seeds {
                let mut s = base.clone();
                if budget.is_finite() {
                    s.battery_joules = Some(budget);
                }
                let mut sim = build_simulation(&s, arm, seed);
                let _ = sim.run_until(SimTime::from_secs(s.duration_secs));
                dead_total += sim.api().depleted_count();
                let (_, summary) = sim.finish();
                runs.push(summary);
            }
            let mean = dtn_sim::stats::RunSummary::mean_of(&runs);
            let dead = dead_total as f64 / cli.seeds.len() as f64;
            let label = if budget.is_finite() {
                format!("{budget:.0}")
            } else {
                "ideal".to_owned()
            };
            println!(
                "{:>12} | {:>9} | {:>13.3} | {:>13} | {:>10.1} | {:>10.1}",
                label,
                arm.label(),
                mean.delivery_ratio,
                mean.relays_completed,
                dead,
                mean.relay_bytes as f64 / 1e6
            );
            rows.push(format!(
                "{label},{},{:.6},{},{dead:.1},{}",
                arm.label(),
                mean.delivery_ratio,
                mean.relays_completed,
                mean.relay_bytes
            ));
        }
    }
    write_csv(
        "lifetime",
        "battery_j,arm,mdr,relays,dead_nodes,bytes",
        &rows,
    );
}
