//! Network-lifetime extension experiment (ours, beyond the paper).
//!
//! The paper's entire motivation is battery scarcity, but its evaluation
//! runs on ideal power. This experiment gives every node a finite battery
//! and measures what the mechanism's traffic savings buy in *lifetime*:
//! delivery ratio and the number of battery-dead radios at the end of the
//! run, for several battery budgets, with a 40% selfish population.

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::lifetime::run(&cli);
    cli.enforce_expect_warm();
}
