//! Router × overlay matrix (ours, beyond the paper): the incentive
//! overlay composed with every routing backend on one workload. The
//! paper's headline "Incentive vs ChitChat" comparison is the chitchat
//! column of this 12-cell grid; the other columns measure how much of the
//! incentive win is router-independent.
//!
//! ```text
//! cargo run --release -p dtn-bench --bin matrix
//! cargo run --release -p dtn-bench --bin matrix -- --smoke --sweep-cache
//! ```

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::matrix::run(&cli);
    cli.enforce_expect_warm();
}
