//! Figure 5.4 — Average rating of malicious nodes (as held by non-malicious
//! nodes) vs time, for malicious percentages 10–40%.
//!
//! Expected shape (Paper I, §5.D): every curve decreases from the neutral
//! prior as the DRM accumulates and gossips evidence; ratings converge
//! well below neutral on the 0–5 scale. (The paper additionally claims
//! recognition accelerates with more malicious nodes; see EXPERIMENTS.md
//! for how our curves compare on that secondary effect.)

use dtn_bench::{print_scenario_header, write_csv, Cli};
use dtn_core::protocol::MALICIOUS_RATING_SERIES;
use dtn_workloads::paper::malicious_sweep;
use dtn_workloads::runner::run_seeds;
use dtn_workloads::scenario::Arm;

fn main() {
    let cli = Cli::parse();
    let sweep = malicious_sweep(cli.scale);
    print_scenario_header(
        "Fig 5.4 — average rating of malicious nodes vs time",
        &sweep[0],
        &cli.seeds,
    );

    let mut series_by_pct = Vec::new();
    for scenario in &sweep {
        let pct = (scenario.malicious_fraction * 100.0).round();
        let summary = run_seeds(scenario, Arm::Incentive, &cli.seeds);
        let series = summary
            .series
            .get(MALICIOUS_RATING_SERIES)
            .cloned()
            .unwrap_or_default();
        series_by_pct.push((pct, series));
    }

    // Align on the first series' sample times.
    let times: Vec<f64> = series_by_pct
        .first()
        .map(|(_, s)| s.iter().map(|(t, _)| *t).collect())
        .unwrap_or_default();
    let header: Vec<String> = series_by_pct
        .iter()
        .map(|(pct, _)| format!("{pct:>3.0}% mal"))
        .collect();
    println!("{:>9} | {}", "t (min)", header.join(" | "));
    println!("{}", "-".repeat(12 + 11 * series_by_pct.len()));
    let mut rows = Vec::new();
    for (i, t) in times.iter().enumerate() {
        let mut cells = Vec::new();
        let mut csv = format!("{:.0}", t / 60.0);
        for (_, series) in &series_by_pct {
            let v = series.get(i).map_or(f64::NAN, |(_, v)| *v);
            cells.push(format!("{v:>8.3}"));
            csv.push_str(&format!(",{v:.4}"));
        }
        println!("{:>9.0} | {}", t / 60.0, cells.join(" | "));
        rows.push(csv);
    }
    let csv_header = std::iter::once("t_min".to_owned())
        .chain(
            series_by_pct
                .iter()
                .map(|(p, _)| format!("avg_rating_{p:.0}pct")),
        )
        .collect::<Vec<_>>()
        .join(",");
    write_csv("fig5_4", &csv_header, &rows);

    for (pct, series) in &series_by_pct {
        println!("\n{pct:.0}% malicious:");
        print!(
            "{}",
            dtn_bench::ascii_chart(
                series,
                6,
                &format!("time → avg rating, {pct:.0}% malicious")
            )
        );
    }
}
