//! Figure 5.4 — Average rating of malicious nodes (as held by non-malicious
//! nodes) vs time, for malicious percentages 10–40%.
//!
//! Expected shape (Paper I, §5.D): every curve decreases from the neutral
//! prior as the DRM accumulates and gossips evidence; ratings converge
//! well below neutral on the 0–5 scale. (The paper additionally claims
//! recognition accelerates with more malicious nodes; see EXPERIMENTS.md
//! for how our curves compare on that secondary effect.)

use dtn_bench::{figures, Cli};

fn main() {
    let cli = Cli::parse();
    figures::fig5_4::run(&cli);
    cli.enforce_expect_warm();
}
