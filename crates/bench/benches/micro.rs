//! Criterion micro-benchmarks over the hot paths of the stack: the RTSR
//! weight exchange, the incentive formulas, the reputation merge/gossip,
//! spatial contact detection and buffer churn.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dtn_incentive::ledger::Tokens;
use dtn_incentive::params::{IncentiveParams, Role};
use dtn_incentive::promise::{software_incentive, SoftwareFactors};
use dtn_incentive::settlement::{award, AwardInputs};
use dtn_reputation::rating::RatingParams;
use dtn_reputation::table::ReputationTable;
use dtn_routing::interests::{ChitChatParams, InterestTable};
use dtn_sim::geometry::{Area, Point};
use dtn_sim::message::Keyword;
use dtn_sim::rng::SimRng;
use dtn_sim::time::SimTime;
use dtn_sim::world::{NodeId, SpatialGrid};

fn table_with(n: u32, params: &ChitChatParams) -> InterestTable {
    let mut t = InterestTable::new();
    for k in 0..n {
        t.subscribe(Keyword(k), params, SimTime::ZERO);
    }
    t
}

fn bench_chitchat_exchange(c: &mut Criterion) {
    let params = ChitChatParams::paper_default();
    let a = table_with(20, &params);
    let b = table_with(20, &params);
    c.bench_function("chitchat_decay_20_interests", |bencher| {
        bencher.iter_batched(
            || a.clone(),
            |mut t| t.decay(SimTime::from_secs(120.0), &params, |_| false),
            criterion::BatchSize::SmallInput,
        );
    });
    c.bench_function("chitchat_grow_20x20_interests", |bencher| {
        bencher.iter_batched(
            || a.clone(),
            |mut t| t.grow(black_box(&b), 30.0, &params, SimTime::from_secs(60.0)),
            criterion::BatchSize::SmallInput,
        );
    });
    let keywords: Vec<Keyword> = (0..5).map(Keyword).collect();
    c.bench_function("chitchat_sum_of_weights", |bencher| {
        bencher.iter(|| a.sum_of_weights(black_box(&keywords)));
    });
}

fn bench_incentive_math(c: &mut Criterion) {
    let params = IncentiveParams::paper_default();
    let factors = SoftwareFactors {
        receiver_interest_sum: 1.2,
        max_connected_interest_sum: 2.5,
        size_bytes: 1_000_000,
        max_size_bytes: 1_500_000,
        quality: 0.8,
        max_quality: 1.0,
        sender_role: Role::new(2),
        receiver_role: Role::new(2),
        source_priority: 1,
    };
    c.bench_function("software_incentive", |bencher| {
        bencher.iter(|| software_incentive(black_box(&factors), &params));
    });
    let inputs = AwardInputs {
        promise: Tokens::new(7.5),
        tag_reward: Tokens::new(2.0),
        path_ratings: vec![4.0, 3.5, 2.0, 4.5],
        deliverer_rating: 3.7,
    };
    c.bench_function("award_with_4_path_ratings", |bencher| {
        bencher.iter(|| award(black_box(&inputs), &params));
    });
}

fn bench_reputation(c: &mut Criterion) {
    let params = RatingParams::paper_default();
    let mut alice = ReputationTable::new(NodeId(0), params);
    for i in 1..100u32 {
        alice.record_message_rating(NodeId(i), f64::from(i % 5));
    }
    let digest = alice.digest();
    c.bench_function("reputation_digest_100_subjects", |bencher| {
        bencher.iter(|| alice.digest());
    });
    c.bench_function("reputation_absorb_digest_100", |bencher| {
        bencher.iter_batched(
            || ReputationTable::new(NodeId(200), params),
            |mut t| t.absorb_digest(NodeId(0), black_box(&digest)),
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_spatial_grid(c: &mut Criterion) {
    let area = Area::square_km(5.0);
    let mut rng = SimRng::new(42);
    let positions: Vec<Point> = (0..500)
        .map(|_| Point::new(rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)))
        .collect();
    c.bench_function("grid_rebuild_and_pairs_500_nodes", |bencher| {
        let mut grid = SpatialGrid::new(area, 100.0);
        bencher.iter(|| {
            grid.rebuild(black_box(&positions));
            let mut count = 0usize;
            grid.for_each_pair_within(&positions, 100.0, |_, _| count += 1);
            count
        });
    });
}

criterion_group!(
    benches,
    bench_chitchat_exchange,
    bench_incentive_math,
    bench_reputation,
    bench_spatial_grid
);
criterion_main!(benches);
