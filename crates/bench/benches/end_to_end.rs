//! End-to-end simulation benchmarks: a small but complete scenario per
//! protocol arm, measuring whole-run wall-clock (the quantity that budgets
//! the figure sweeps).

use criterion::{criterion_group, criterion_main, Criterion};

use dtn_workloads::paper::reduced_scenario;
use dtn_workloads::runner::run_once;
use dtn_workloads::scenario::{Arm, Scenario};

fn small() -> Scenario {
    let mut s = reduced_scenario();
    s.nodes = 30;
    s.area_km2 = 0.3;
    s.duration_secs = 900.0;
    s.message_interval_secs = 30.0;
    s.message_ttl_secs = 600.0;
    s.selfish_fraction = 0.2;
    s.malicious_fraction = 0.1;
    s.named("bench-small")
}

fn bench_small_runs(c: &mut Criterion) {
    let scenario = small();
    let mut group = c.benchmark_group("end_to_end_30_nodes_15min");
    group.sample_size(10);
    group.bench_function("incentive_arm", |b| {
        b.iter(|| run_once(&scenario, Arm::Incentive, 7));
    });
    group.bench_function("chitchat_arm", |b| {
        b.iter(|| run_once(&scenario, Arm::ChitChat, 7));
    });
    group.finish();
}

criterion_group!(benches, bench_small_runs);
criterion_main!(benches);
