//! End-to-end tests of the integrated protocol on controlled topologies.

use dtn_core::prelude::*;
use dtn_sim::prelude::*;

fn msg(at: f64, source: u32, tags: Vec<Keyword>, expected: Vec<NodeId>) -> ScheduledMessage {
    ScheduledMessage {
        at: SimTime::from_secs(at),
        source: NodeId(source),
        size_bytes: 100_000,
        ttl_secs: 100_000.0,
        priority: Priority::High,
        quality: Quality::new(0.9),
        ground_truth: tags.clone(),
        source_tags: tags,
        expected_destinations: expected,
    }
}

/// Two nodes in range: n0 source, n1 destination.
fn adjacent_pair(router: DcimRouter, messages: Vec<ScheduledMessage>) -> Simulation<DcimRouter> {
    SimulationBuilder::new(Area::new(1000.0, 1000.0), 11)
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
        .messages(messages)
        .build(router)
}

/// n0 — n1 — n2 chain (90 m spacing, 100 m range).
fn chain(router: DcimRouter, messages: Vec<ScheduledMessage>) -> Simulation<DcimRouter> {
    SimulationBuilder::new(Area::new(1000.0, 1000.0), 11)
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(90.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(180.0, 0.0))))
        .messages(messages)
        .build(router)
}

#[test]
fn destination_pays_deliverer_on_first_delivery() {
    let mut router = DcimRouter::new(2, ProtocolParams::paper_default(), 1);
    router.subscribe(NodeId(1), [Keyword(1)]);
    let mut sim = adjacent_pair(router, vec![msg(5.0, 0, vec![Keyword(1)], vec![NodeId(1)])]);
    let summary = sim.run_until(SimTime::from_secs(300.0));
    assert_eq!(summary.delivered_pairs, 1);
    let (router, _) = sim.finish();
    let stats = router.stats();
    assert_eq!(stats.settlements, 1);
    assert!(stats.tokens_awarded > 0.0, "the deliverer was paid");
    // The source (deliverer) gained, the destination paid.
    assert!(router.ledger().balance(NodeId(0)).amount() > 200.0);
    assert!(router.ledger().balance(NodeId(1)).amount() < 200.0);
    // Closed economy.
    assert!((router.ledger().total().amount() - 400.0).abs() < 1e-9);
}

#[test]
fn broke_destination_receives_nothing() {
    let mut params = ProtocolParams::paper_default();
    params.incentive.initial_tokens = 0.0;
    let mut router = DcimRouter::new(2, params, 1);
    router.subscribe(NodeId(1), [Keyword(1)]);
    let mut sim = adjacent_pair(router, vec![msg(5.0, 0, vec![Keyword(1)], vec![NodeId(1)])]);
    let summary = sim.run_until(SimTime::from_secs(300.0));
    assert_eq!(summary.delivered_pairs, 0, "zero tokens → no reception");
    let (router, _) = sim.finish();
    assert!(router.stats().refused_broke_destination > 0);
}

#[test]
fn chitchat_baseline_ignores_tokens() {
    let mut params = ProtocolParams::chitchat_baseline();
    params.incentive.initial_tokens = 0.0;
    let mut router = DcimRouter::new(2, params, 1);
    router.subscribe(NodeId(1), [Keyword(1)]);
    let mut sim = adjacent_pair(router, vec![msg(5.0, 0, vec![Keyword(1)], vec![NodeId(1)])]);
    let summary = sim.run_until(SimTime::from_secs(300.0));
    assert_eq!(summary.delivered_pairs, 1, "baseline has no token bar");
    let (router, _) = sim.finish();
    assert_eq!(router.stats().settlements, 0, "baseline never settles");
}

#[test]
fn fully_selfish_node_blocks_contact() {
    let mut router = DcimRouter::new(2, ProtocolParams::paper_default(), 1);
    router.subscribe(NodeId(1), [Keyword(1)]);
    router.set_behavior(NodeId(1), NodeBehavior::Selfish { duty_cycle: 0.0 });
    let mut sim = adjacent_pair(router, vec![msg(5.0, 0, vec![Keyword(1)], vec![NodeId(1)])]);
    let summary = sim.run_until(SimTime::from_secs(600.0));
    assert_eq!(summary.delivered_pairs, 0, "medium never open");
    assert_eq!(summary.relays_completed, 0);
}

#[test]
fn relay_earns_through_delivery() {
    let mut router = DcimRouter::new(3, ProtocolParams::paper_default(), 1);
    router.subscribe(NodeId(2), [Keyword(1)]);
    let mut sim = chain(
        router,
        vec![msg(60.0, 0, vec![Keyword(1)], vec![NodeId(2)])],
    );
    let summary = sim.run_until(SimTime::from_secs(1800.0));
    assert_eq!(summary.delivered_pairs, 1, "chain delivery");
    let (router, _) = sim.finish();
    // n1 relayed and delivered: it collected the award from n2 (and may
    // have prepaid n0 at hand-off, strictly less than the award).
    assert!(
        router.ledger().balance(NodeId(1)).amount() > 200.0 - 3.0,
        "relay roughly breaks even or profits: {}",
        router.ledger().balance(NodeId(1))
    );
    assert!(
        router.ledger().balance(NodeId(2)).amount() < 200.0,
        "destination paid"
    );
    let total = router.ledger().total().amount();
    assert!((total - 600.0).abs() < 1e-9, "closed economy, got {total}");
}

#[test]
fn second_delivery_of_same_message_is_not_paid() {
    // Both n1 and n2 are destinations adjacent to the source; the message
    // is delivered to each exactly once and each settlement is independent.
    let mut router = DcimRouter::new(3, ProtocolParams::paper_default(), 1);
    router.subscribe(NodeId(1), [Keyword(1)]);
    router.subscribe(NodeId(2), [Keyword(1)]);
    let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 11)
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 50.0))))
        .message(msg(5.0, 0, vec![Keyword(1)], vec![NodeId(1), NodeId(2)]))
        .build(router);
    let summary = sim.run_until(SimTime::from_secs(600.0));
    assert_eq!(summary.delivered_pairs, 2);
    let (router, _) = sim.finish();
    assert_eq!(
        router.stats().settlements,
        2,
        "one settlement per destination, never more"
    );
}

#[test]
fn malicious_tagger_reputation_decays() {
    // n1 is malicious and enriches everything it carries with fake tags;
    // n2 receives through it and rates it down.
    let mut params = ProtocolParams::paper_default();
    params.honest_enrich_prob = 0.0; // isolate malicious enrichment
    params.rating_prob = 1.0; // every reception rated, few messages
    let mut router = DcimRouter::new(3, params, 1);
    router.subscribe(NodeId(2), [Keyword(1)]);
    router.set_behavior(NodeId(1), NodeBehavior::Malicious);
    let messages: Vec<ScheduledMessage> = (0..8)
        .map(|i| {
            msg(
                30.0 + 60.0 * f64::from(i),
                0,
                vec![Keyword(1)],
                vec![NodeId(2)],
            )
        })
        .collect();
    let mut sim = chain(router, messages);
    let _ = sim.run_until(SimTime::from_secs(3600.0));
    let (router, _) = sim.finish();
    let rating = router.reputation(NodeId(2)).rating_of(NodeId(1));
    assert!(
        rating < router.params().rating.neutral_rating,
        "n2's view of the malicious relay fell below neutral: {rating}"
    );
    assert!(router.stats().irrelevant_tags_added > 0);
}

#[test]
fn reputation_gossip_reaches_third_parties() {
    // Same malicious-relay chain; after deliveries, n2 gossips its opinion
    // of n1 back over the n1–n2 contact... which n1 would drop (self), so
    // check that the *source* n0 learns about n1 via digests relayed over
    // the n0–n1 link from n1's table about others — instead, verify the
    // malicious average rating series was sampled and decreases.
    let mut params = ProtocolParams::paper_default();
    params.honest_enrich_prob = 0.0;
    params.rating_prob = 1.0;
    params.sample_interval_secs = 300.0;
    let mut router = DcimRouter::new(3, params, 1);
    router.subscribe(NodeId(2), [Keyword(1)]);
    router.set_behavior(NodeId(1), NodeBehavior::Malicious);
    let messages: Vec<ScheduledMessage> = (0..8)
        .map(|i| {
            msg(
                30.0 + 60.0 * f64::from(i),
                0,
                vec![Keyword(1)],
                vec![NodeId(2)],
            )
        })
        .collect();
    let mut sim = chain(router, messages);
    let summary = sim.run_until(SimTime::from_secs(3600.0));
    let series = summary
        .series
        .get(MALICIOUS_RATING_SERIES)
        .expect("rating series sampled");
    assert!(series.len() >= 2);
    let first = series.first().expect("nonempty").1;
    let last = series.last().expect("nonempty").1;
    let neutral = 2.5;
    // Detection on a 3-node chain is fast: the rating may already sit at
    // its floor by the first sample (the avoidance rule then freezes it by
    // cutting the malicious node off), so assert the monotone-below-neutral
    // invariant rather than strict decrease between samples.
    assert!(last <= first, "rating never recovers: {first} → {last}");
    assert!(
        last < neutral,
        "malicious node ends well below the neutral prior: {last}"
    );
}

#[test]
fn enrichment_creates_new_destinations() {
    // Ground truth {1, 2}; source tags only {1}. n1 (interested in 1,
    // honest, always enriches) receives the message, adds the missing tag 2
    // en route; n2 is interested only in 2 and becomes a destination purely
    // thanks to enrichment.
    let mut params = ProtocolParams::paper_default();
    params.honest_enrich_prob = 1.0;
    let mut router = DcimRouter::new(3, params, 1);
    router.subscribe(NodeId(1), [Keyword(1)]);
    router.subscribe(NodeId(2), [Keyword(2)]);
    let m = ScheduledMessage {
        ground_truth: vec![Keyword(1), Keyword(2)],
        source_tags: vec![Keyword(1)],
        ..msg(60.0, 0, vec![Keyword(1)], vec![])
    };
    let mut sim = chain(router, vec![m]);
    let summary = sim.run_until(SimTime::from_secs(1800.0));
    assert_eq!(
        summary.bonus_deliveries, 2,
        "n1 by direct interest, n2 only via the enriched tag"
    );
    let (router, _) = sim.finish();
    assert!(router.stats().relevant_tags_added > 0);
}

#[test]
fn deterministic_under_same_seed() {
    let build = || {
        let mut router = DcimRouter::new(20, ProtocolParams::paper_default(), 99);
        for i in 0..20u32 {
            router.subscribe(NodeId(i), [Keyword(i % 5)]);
            if i % 4 == 0 {
                router.set_behavior(NodeId(i), NodeBehavior::paper_selfish());
            }
        }
        SimulationBuilder::new(Area::new(1500.0, 1500.0), 42)
            .nodes(20, || Box::new(RandomWaypoint::pedestrian()))
            .messages(
                (0..15).map(|i| msg(f64::from(i) * 60.0, i % 20, vec![Keyword(i % 5)], vec![])),
            )
            .build(router)
    };
    let a = build().run_until(SimTime::from_secs(3600.0));
    let b = build().run_until(SimTime::from_secs(3600.0));
    assert_eq!(a, b);
}

#[test]
fn economy_is_closed_under_load() {
    let n = 25usize;
    let mut router = DcimRouter::new(n, ProtocolParams::paper_default(), 5);
    for i in 0..n as u32 {
        router.subscribe(NodeId(i), [Keyword(i % 6), Keyword((i + 1) % 6)]);
    }
    router.set_behavior(NodeId(3), NodeBehavior::Malicious);
    router.set_behavior(NodeId(7), NodeBehavior::paper_selfish());
    let initial_total = 200.0 * n as f64;
    let mut sim = SimulationBuilder::new(Area::new(1200.0, 1200.0), 77)
        .nodes(n, || Box::new(RandomWaypoint::pedestrian()))
        .messages((0..40).map(|i| {
            msg(
                f64::from(i) * 30.0,
                i % n as u32,
                vec![Keyword(i % 6)],
                vec![],
            )
        }))
        .build(router);
    let _ = sim.run_until(SimTime::from_secs(5400.0));
    let (router, _) = sim.finish();
    let total = router.ledger().total().amount();
    assert!(
        (total - initial_total).abs() < 1e-6,
        "token conservation: {total} vs {initial_total}"
    );
}

#[test]
fn unaffordable_prepay_at_completion_drops_the_copy() {
    // Pay-or-no-reception: a relay that cannot cover its quoted prepayment
    // when the transfer lands must not keep the copy. Trigger: prepay on
    // any positive mean weight (threshold 0), full-promise prepayments,
    // and a relay whose tokens cover roughly one hand-off only.
    let mut params = ProtocolParams::paper_default();
    params.incentive.relay_threshold = 0.0;
    params.incentive.prepay_fraction = 0.4;
    params.incentive.initial_tokens = 4.0;
    params.enrichment_enabled = false;
    let mut router = DcimRouter::new(3, params, 3);
    // n2 subscribes kw1 so n1 acquires a transient interest → relay path.
    router.subscribe(NodeId(2), [Keyword(1)]);
    let messages: Vec<ScheduledMessage> = (0..6)
        .map(|k| {
            ScheduledMessage {
                size_bytes: 2_000_000, // 8 s per hop: balances move mid-air
                ..msg(
                    300.0 + 30.0 * f64::from(k),
                    0,
                    vec![Keyword(1)],
                    vec![NodeId(2)],
                )
            }
        })
        .collect();
    let mut sim = chain(router, messages);
    let _ = sim.run_until(SimTime::from_secs(1800.0));
    let (router, _) = sim.finish();
    let stats = router.stats();
    assert!(stats.prepayments > 0, "some hand-offs were prepaid");
    assert!(
        stats.refused_unaffordable_prepay > 0,
        "at least one hand-off was refused for lack of tokens \
         (offer-time check or completion-time enforcement)"
    );
    // The economy stayed closed through it all.
    assert!((router.ledger().total().amount() - 12.0).abs() < 1e-9);
}
