//! Property-based tests over the integrated protocol: whole small
//! simulations driven by arbitrary populations and workloads, checking the
//! economic and bookkeeping invariants end to end.

use proptest::prelude::*;

use dtn_core::prelude::*;
use dtn_sim::prelude::*;

/// Builds a random small scenario and returns the finished router + summary.
fn run_random(
    seed: u64,
    n: usize,
    selfish: &[usize],
    malicious: &[usize],
    msgs: usize,
    initial_tokens: f64,
) -> (DcimRouter, RunSummary) {
    let mut params = ProtocolParams::paper_default();
    params.incentive.initial_tokens = initial_tokens;
    params.rating_prob = 0.5;
    let mut router = DcimRouter::new(n, params, seed);
    for i in 0..n {
        router.subscribe(NodeId(i as u32), [Keyword((i % 4) as u32)]);
    }
    for &i in selfish {
        router.set_behavior(NodeId((i % n) as u32), NodeBehavior::paper_selfish());
    }
    for &i in malicious {
        router.set_behavior(NodeId((i % n) as u32), NodeBehavior::Malicious);
    }
    let messages = (0..msgs).map(|k| ScheduledMessage {
        at: SimTime::from_secs(30.0 + k as f64 * 45.0),
        source: NodeId((k % n) as u32),
        size_bytes: 200_000,
        ttl_secs: 2400.0,
        priority: [Priority::High, Priority::Medium, Priority::Low][k % 3],
        quality: Quality::new(0.3 + 0.1 * (k % 7) as f64),
        ground_truth: vec![Keyword((k % 4) as u32), Keyword(((k + 1) % 4) as u32)],
        source_tags: vec![Keyword((k % 4) as u32)],
        expected_destinations: (0..n)
            .filter(|&i| i % 4 == k % 4 && i != k % n)
            .map(|i| NodeId(i as u32))
            .collect(),
    });
    let mut sim = SimulationBuilder::new(Area::new(700.0, 700.0), seed)
        .nodes(n, || Box::new(RandomWaypoint::pedestrian()))
        .messages(messages)
        .build(router);
    let _ = sim.run_until(SimTime::from_secs(1800.0));
    sim.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The token economy is closed under arbitrary populations: the ledger
    /// total equals the initial endowment exactly, and no balance is
    /// negative.
    #[test]
    fn economy_closed_under_arbitrary_populations(
        seed in 0u64..500,
        n in 8usize..20,
        selfish in prop::collection::vec(0usize..20, 0..6),
        malicious in prop::collection::vec(0usize..20, 0..4),
        tokens in 5.0f64..200.0
    ) {
        let (router, _) = run_random(seed, n, &selfish, &malicious, 12, tokens);
        let total = router.ledger().total().amount();
        prop_assert!((total - tokens * n as f64).abs() < 1e-6, "total {total}");
        for i in 0..n {
            prop_assert!(router.ledger().balance(NodeId(i as u32)).amount() >= 0.0);
        }
    }

    /// Delivery bookkeeping is sane: delivered pairs never exceed expected
    /// pairs, the ratio is in [0, 1], and settlements never exceed total
    /// deliveries (expected + bonus).
    #[test]
    fn delivery_bookkeeping_bounds(
        seed in 0u64..500,
        n in 8usize..16,
        msgs in 4usize..20
    ) {
        let (router, summary) = run_random(seed, n, &[], &[], msgs, 100.0);
        prop_assert!(summary.delivered_pairs <= summary.expected_pairs);
        prop_assert!((0.0..=1.0).contains(&summary.delivery_ratio));
        prop_assert!(summary.created as usize <= msgs);
        let total_deliveries = summary.delivered_pairs + summary.bonus_deliveries;
        prop_assert!(router.stats().settlements <= total_deliveries);
    }

    /// Interest weights remain bounded after a full run with exchanges,
    /// decay, and growth happening on real contact patterns.
    #[test]
    fn rtsr_weights_bounded_after_run(seed in 0u64..300, n in 8usize..16) {
        let (router, _) = run_random(seed, n, &[0, 3], &[1], 10, 100.0);
        for i in 0..n {
            for (_, entry) in router.table(NodeId(i as u32)).iter() {
                prop_assert!(entry.weight >= 0.0 && entry.weight <= 1.0);
            }
        }
    }

    /// Reputation ratings remain on the 0–5 scale for every observer and
    /// subject after a full adversarial run.
    #[test]
    fn reputations_bounded_after_run(seed in 0u64..300, n in 8usize..16) {
        let (router, _) = run_random(seed, n, &[], &[0, 1, 2], 10, 100.0);
        let max = router.params().rating.max_rating;
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                let r = router.reputation(NodeId(i)).rating_of(NodeId(j));
                prop_assert!(r >= 0.0 && r <= max, "rating {r}");
            }
        }
    }

    /// A 100%-selfish population with zero duty cycle produces no traffic
    /// at all — the degenerate network stays silent rather than panicking.
    #[test]
    fn fully_dark_network_is_silent(seed in 0u64..100) {
        let n = 10usize;
        let mut params = ProtocolParams::paper_default();
        params.incentive.initial_tokens = 50.0;
        let mut router = DcimRouter::new(n, params, seed);
        for i in 0..n as u32 {
            router.subscribe(NodeId(i), [Keyword(i % 3)]);
            router.set_behavior(NodeId(i), NodeBehavior::Selfish { duty_cycle: 0.0 });
        }
        let messages = (0..5u64).map(|k| ScheduledMessage {
            at: SimTime::from_secs(10.0 + k as f64 * 60.0),
            source: NodeId((k % 10) as u32),
            size_bytes: 100_000,
            ttl_secs: 1000.0,
            priority: Priority::High,
            quality: Quality::new(0.9),
            ground_truth: vec![Keyword(0)],
            source_tags: vec![Keyword(0)],
            expected_destinations: vec![NodeId(9)],
        });
        let mut sim = SimulationBuilder::new(Area::new(300.0, 300.0), seed)
            .nodes(n, || Box::new(RandomWaypoint::pedestrian()))
            .messages(messages)
            .build(router);
        let summary = sim.run_until(SimTime::from_secs(900.0));
        prop_assert_eq!(summary.relays_completed, 0);
        prop_assert_eq!(summary.delivered_pairs, 0);
        let (router, _) = sim.finish();
        prop_assert_eq!(router.stats().settlements, 0);
        prop_assert!((router.ledger().total().amount() - 500.0).abs() < 1e-9);
    }
}
