//! The operator functions of Paper I, §4.
//!
//! The paper specifies eleven user/system functions. Most map directly onto
//! methods of the component crates; this module provides the remaining
//! queries and a cross-reference so the public API matches the paper's
//! operator list one-to-one:
//!
//! | Paper function | Implemented by |
//! |---|---|
//! | 1. `Annotate` | [`annotate`] (source tags from content) |
//! | 2. `Subscribe` | [`crate::protocol::DcimRouter::subscribe`] |
//! | 3. `DecayWeights` | [`dtn_routing::interests::InterestTable::decay`] |
//! | 4. `IncrementWeights` | [`dtn_routing::interests::InterestTable::grow`] |
//! | 5. `GetMessagesToForward` | [`messages_to_forward`] |
//! | 6. `DecideDestOrRelay` | [`device_type`] |
//! | 7. `DecideBestRelay` | [`best_relay`] |
//! | 8. `ComputeIncentive` | [`crate::protocol::DcimRouter`] promise quoting (see [`dtn_incentive::promise`]) |
//! | 9. `RateMessage` | [`crate::judge::judge_message`] + [`dtn_reputation::rating`] |
//! | 10. `RateNode` | [`dtn_reputation::table::ReputationTable::rating_of`] |
//! | 11. `Enrich` | [`crate::enrich::enrich_copy`] |

use dtn_sim::kernel::SimApi;
use dtn_sim::message::{Keyword, MessageId};
use dtn_sim::rng::SimRng;
use dtn_sim::world::NodeId;

use crate::protocol::DcimRouter;

/// Whether a connected device is a destination or a relay for a message
/// (operator function 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceType {
    /// The device has a *direct* interest in one of the message keywords.
    Destination,
    /// The device has only transient interest (or none): at best a relay.
    Relay,
}

/// Operator function 1 — `Annotate`: produces the source's initial tags for
/// a message whose content is described by `ground_truth`.
///
/// The source "fetches labels from the cloud" and keeps the ones that suit
/// the image; we model that as keeping a fraction of the true content
/// keywords (at least one), leaving the remainder for en-route enrichment.
///
/// # Panics
///
/// Panics if `ground_truth` is empty or `keep_fraction` is outside `(0, 1]`.
#[must_use]
pub fn annotate(ground_truth: &[Keyword], keep_fraction: f64, rng: &mut SimRng) -> Vec<Keyword> {
    assert!(
        !ground_truth.is_empty(),
        "content must have at least one keyword"
    );
    assert!(
        keep_fraction > 0.0 && keep_fraction <= 1.0,
        "keep_fraction must lie in (0, 1]"
    );
    let keep =
        ((ground_truth.len() as f64 * keep_fraction).round() as usize).clamp(1, ground_truth.len());
    let mut picked = rng.choose_indices(ground_truth.len(), keep);
    picked.sort_unstable();
    picked.into_iter().map(|i| ground_truth[i]).collect()
}

/// Operator function 6 — `DecideDestOrRelay`.
#[must_use]
pub fn device_type(router: &DcimRouter, node: NodeId, keywords: &[Keyword]) -> DeviceType {
    if router.table(node).is_destination_for(keywords) {
        DeviceType::Destination
    } else {
        DeviceType::Relay
    }
}

/// Operator function 5 — `GetMessagesToForward`: the messages `from` would
/// offer `to` under the routing rule (destination, or `S_to > S_from`),
/// ignoring the incentive gates (those apply at offer time).
#[must_use]
pub fn messages_to_forward(
    api: &SimApi,
    router: &DcimRouter,
    from: NodeId,
    to: NodeId,
) -> Vec<MessageId> {
    let mut out = Vec::new();
    for id in api.buffer(from).ids_sorted() {
        if api.buffer(to).contains(id) {
            continue;
        }
        let Some(copy) = api.buffer(from).get(id) else {
            continue;
        };
        let keywords = copy.keywords();
        let dest = router.table(to).is_destination_for(&keywords);
        let s_from = router.table(from).sum_of_weights(&keywords);
        let s_to = router.table(to).sum_of_weights(&keywords);
        if dest || s_to > s_from {
            out.push(id);
        }
    }
    out
}

/// Operator function 7 — `DecideBestRelay`: among `candidates`, the one
/// with the highest sum of interest weights for `keywords` (the highest
/// delivery probability). Ties break toward the smaller node id; `None`
/// when no candidate has any weight.
#[must_use]
pub fn best_relay(
    router: &DcimRouter,
    candidates: &[NodeId],
    keywords: &[Keyword],
) -> Option<NodeId> {
    candidates
        .iter()
        .map(|&n| (n, router.table(n).sum_of_weights(keywords)))
        .filter(|&(_, w)| w > 0.0)
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.0.cmp(&a.0))
        })
        .map(|(n, _)| n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;

    fn router() -> DcimRouter {
        DcimRouter::new(4, ProtocolParams::paper_default(), 7)
    }

    #[test]
    fn annotate_keeps_a_nonempty_truth_subset() {
        let truth: Vec<Keyword> = (0..6).map(Keyword).collect();
        let mut rng = SimRng::new(1);
        for frac in [0.2, 0.5, 1.0] {
            let tags = annotate(&truth, frac, &mut rng);
            assert!(!tags.is_empty());
            assert!(tags.len() <= truth.len());
            assert!(tags.iter().all(|t| truth.contains(t)));
            let mut sorted = tags.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), tags.len(), "no duplicates");
        }
        assert_eq!(annotate(&truth, 1.0, &mut rng).len(), 6);
    }

    #[test]
    #[should_panic(expected = "keep_fraction")]
    fn annotate_rejects_zero_fraction() {
        let _ = annotate(&[Keyword(1)], 0.0, &mut SimRng::new(1));
    }

    #[test]
    fn device_type_follows_direct_interest() {
        let mut r = router();
        r.subscribe(NodeId(1), [Keyword(5)]);
        assert_eq!(
            device_type(&r, NodeId(1), &[Keyword(5)]),
            DeviceType::Destination
        );
        assert_eq!(device_type(&r, NodeId(2), &[Keyword(5)]), DeviceType::Relay);
        assert_eq!(device_type(&r, NodeId(1), &[Keyword(6)]), DeviceType::Relay);
    }

    #[test]
    fn best_relay_picks_highest_weight() {
        let mut r = router();
        r.subscribe(NodeId(1), [Keyword(5)]);
        r.subscribe(NodeId(2), [Keyword(5), Keyword(6)]);
        let picked = best_relay(
            &r,
            &[NodeId(1), NodeId(2), NodeId(3)],
            &[Keyword(5), Keyword(6)],
        );
        assert_eq!(picked, Some(NodeId(2)));
        assert_eq!(
            best_relay(&r, &[NodeId(3)], &[Keyword(5)]),
            None,
            "no weight, no relay"
        );
        assert_eq!(best_relay(&r, &[], &[Keyword(5)]), None);
    }
}
