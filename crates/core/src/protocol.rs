//! The integrated data-centric incentive protocol ([`DcimRouter`]).
//!
//! This is the full data flow of Paper I, Fig. 3.1, executed between every
//! pair of connected devices:
//!
//! 1. **Participation gate** — a selfish endpoint's medium is open only one
//!    encounter in ten; a closed medium kills the whole contact.
//! 2. **RTSR + DR exchange** — ChitChat weight decay/growth, then
//!    reputation-digest gossip.
//! 3. **Message routing** — for each carried message the peer is classified
//!    as *destination* (direct interest) or *relay* (`S_v > S_u`). A
//!    destination with zero tokens receives nothing (the starvation rule
//!    that curbs selfish traffic); a relay whose mean tag weight exceeds
//!    the relay threshold must prepay a fraction of the promise.
//! 4. **On reception** — the receiver rates the annotating nodes on the
//!    path (DRM case 1), appends its message rating to the carried path
//!    ratings, and may enrich the copy (honestly or maliciously).
//! 5. **On delivery** — the *first* deliverer to each destination settles:
//!    the destination pays the reputation-scaled award
//!    `I_v = f(path ratings, deliverer rating) · (I + I_t)` where
//!    `I = min(I_s + I_h, I_m)` combines the software promise attached at
//!    hand-off with the deliverer's measured transmit/receive energy, and
//!    `I_t` rewards the deliverer's own relevant enrichment tags.
//!
//! With [`ProtocolParams::incentive_enabled`] off the router degrades to
//! plain ChitChat under the *same* behavior models — that configuration is
//! the baseline arm of every figure in the evaluation.

use dtn_sim::fxhash::FxHashMap;

use dtn_sim::buffer::InsertOutcome;
use dtn_sim::kernel::SimApi;
use dtn_sim::message::{MessageId, Priority};
use dtn_sim::protocol::{Protocol, Reception};
use dtn_sim::rng::{RngState, SimRng};
use dtn_sim::time::SimTime;
use dtn_sim::world::NodeId;

use serde::{Deserialize, Serialize};

use dtn_incentive::ledger::{TokenLedger, TokenLedgerState, Tokens};
use dtn_incentive::params::Role;
use dtn_incentive::promise::{software_incentive, tag_incentive, SoftwareFactors};
use dtn_incentive::settlement::{award, relay_prepayment, AwardInputs, FirstDeliveryRegistry};
use dtn_reputation::rating::{relay_message_rating, source_message_rating};
use dtn_reputation::table::{
    average_rating_of, GossipDigest, ReputationTable, ReputationTableState,
};
use dtn_reputation::watchdog::{Watchdog, WatchdogState};
use dtn_routing::backend::{ChitChatBackend, RouterBackend};
use dtn_routing::exchange::ExchangeWheel;
use dtn_routing::interests::InterestTable;

use crate::behavior::NodeBehavior;
use crate::enrich::enrich_copy;
use crate::judge::judge_message;
use crate::params::ProtocolParams;
use crate::strategy::StrategyKind;

/// The series name under which the Fig. 5.4 metric is sampled.
pub const MALICIOUS_RATING_SERIES: &str = "malicious_avg_rating";
/// The series name tracking how many nodes have run out of tokens.
pub const BROKE_NODES_SERIES: &str = "broke_nodes";

/// Incentive state that travels with a node's copy of a message.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct CarriedMeta {
    /// Joules this holder spent receiving the copy (feeds `I_h`).
    rx_joules: f64,
    /// `r_{m_v,x}`: message ratings accumulated along the path.
    path_ratings: Vec<f64>,
    /// Who handed this holder the copy (`None` for the source). Feeds the
    /// watchdog: when the holder forwards onward, the giver learns its
    /// custody hand-off was honored.
    received_from: Option<NodeId>,
}

/// A routing decision made at offer time, resolved at transfer completion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PendingOffer {
    /// The software promise quoted to the receiver.
    software_promise: f64,
    /// The prepayment the receiver owes the sender on arrival (relay
    /// threshold rule), if any.
    prepay: Option<f64>,
}

/// Aggregate counters of the mechanism's internal economy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProtocolStats {
    /// Settled first deliveries.
    pub settlements: u64,
    /// Tokens paid out in settlements.
    pub tokens_awarded: f64,
    /// Relay-threshold prepayments executed.
    pub prepayments: u64,
    /// Tokens moved by prepayments.
    pub tokens_prepaid: f64,
    /// Receptions refused because the destination had no tokens.
    pub refused_broke_destination: u64,
    /// Relay hand-offs skipped because the receiver could not prepay.
    pub refused_unaffordable_prepay: u64,
    /// Receptions refused because the receiver distrusts the sender
    /// (rating below the avoidance threshold).
    pub refused_distrusted_sender: u64,
    /// Relevant enrichment tags added network-wide.
    pub relevant_tags_added: u64,
    /// Irrelevant (malicious) tags added network-wide.
    pub irrelevant_tags_added: u64,
    /// Relay copies silently discarded by free-riding strategy nodes.
    pub strategy_drops: u64,
    /// Identity churns executed by whitewashing strategy nodes.
    pub whitewash_churns: u64,
    /// Gossip digests rejected as replays of an already-seen sequence
    /// number (defense arm only).
    pub gossip_replays_rejected: u64,
    /// Custody hand-offs withheld because the sender's watchdog finds the
    /// would-be forwarder suspicious (defense arm only).
    pub refused_suspected_dropper: u64,
}

/// The paper's protocol: a routing backend + credit incentives + DRM +
/// enrichment. Defaults to the ChitChat substrate the paper evaluates on;
/// any [`RouterBackend`] composes with the same overlay (see
/// [`DcimRouter::with_backend`]).
#[derive(Debug)]
pub struct DcimRouter<B: RouterBackend = ChitChatBackend> {
    params: ProtocolParams,
    backend: B,
    roles: Vec<Role>,
    behaviors: Vec<NodeBehavior>,
    ledger: TokenLedger,
    reputation: Vec<ReputationTable>,
    registry: FirstDeliveryRegistry,
    meta: FxHashMap<(NodeId, MessageId), CarriedMeta>,
    pending: FxHashMap<(NodeId, NodeId, MessageId), PendingOffer>,
    /// Open contacts as per-node sorted peer lists. `pair_is_open` is the
    /// single hottest membership test in the mechanism (every offer and
    /// every exchange consults it), and binary search over a node's
    /// handful of open peers beats hashing the pair.
    open_adj: Vec<Vec<NodeId>>,
    /// Open pairs and their settlement schedule: the bucketed timing
    /// wheel replaces the per-tick full scan of a `pair → last-serviced`
    /// map — each settlement tick now touches only pairs actually due.
    /// Snapshots still carry the plain sorted map; the schedule is
    /// derived state, rebuilt on restore.
    exchange_wheel: ExchangeWheel,
    /// Reusable due-pair emission buffer for [`Self::on_tick`] (same
    /// scratch discipline as `digest_scratch`).
    due_scratch: Vec<((NodeId, NodeId), f64)>,
    /// Participation (selfish duty-cycle) draws. Isolated in its own
    /// stream so the Incentive and ChitChat arms of a paired comparison
    /// see *identical* open/closed contact patterns — the mechanism-only
    /// consumers (judging, enrichment) draw from separate streams.
    participation_rng: SimRng,
    judge_rng: SimRng,
    enrich_rng: SimRng,
    last_sample: f64,
    stats: ProtocolStats,
    /// Per-node economic strategy (`None` = plays the protocol straight).
    strategies: Vec<Option<StrategyKind>>,
    /// Whether any node has a strategy assigned.
    strategy_mode: bool,
    /// Whether the countermeasures (sequenced weighted gossip, watchdog
    /// custody gate) are armed.
    strategy_defense: bool,
    /// Per-node forwarding watchdogs (allocated lazily — empty until a
    /// strategy or the defense is configured, so the paper-default path
    /// pays nothing).
    watchdogs: Vec<Watchdog>,
    /// Per-node strategy bookkeeping (same lazy allocation).
    strategy_state: Vec<StrategyState>,
    /// Reusable gossip-digest buffers for [`Self::exchange`] — the hot
    /// path builds two ~node-count digests per due pair every settlement
    /// tick; reusing the allocations keeps it off the allocator. Purely
    /// transient scratch: cleared on every use, absent from snapshots.
    digest_scratch: (GossipDigest, GossipDigest),
    /// Reusable id/sort buffers for [`Self::route`] (same scratch
    /// discipline as `digest_scratch`).
    route_ids_scratch: Vec<MessageId>,
    route_keyed_scratch: Vec<(u8, f64, MessageId)>,
    /// Per-node cached offer ordering + buffer maxima, keyed by the
    /// buffer's mutation generation. A routing pass whose buffer is
    /// unchanged since the last pass (the common case: route runs twice
    /// per due pair and most passes transfer nothing) skips the
    /// O(B log B) sort and the maxima scan. Derived state — absent from
    /// snapshots, rebuilt cold after restore.
    route_order: Vec<RouteOrder>,
}

/// One node's cached routing order (see `DcimRouter::route_order`).
#[derive(Debug, Default)]
struct RouteOrder {
    /// Buffer generation the cache was built at; `None` = never built.
    generation: Option<u64>,
    /// Offer order: priority/quality-keyed with the incentive on,
    /// id-sorted otherwise.
    ids: Vec<MessageId>,
    /// `(S_m, Q_m)` buffer maxima at the same generation.
    maxima: (u64, f64),
}

/// Per-node mutable bookkeeping for strategy players.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct StrategyState {
    /// Contacts seen by a minority-game player.
    contacts: u64,
    /// Consecutive contacts the player sat out (probes every 20th).
    skipped: u64,
    /// Sim-time seconds of a whitewasher's last identity churn.
    last_churn: f64,
}

/// Serialized form of a [`DcimRouter`]'s dynamic state — everything the
/// mechanism mutates during a run, with hash containers in canonical
/// key-sorted order. Configuration (params, roles, behaviors, strategy
/// assignments, defense arming) is deliberately absent: a resumed run
/// rebuilds it from the same scenario, and restore cross-checks the parts
/// whose shape depends on it (table counts, lazy adversarial arrays).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DcimState {
    /// The routing backend's own opaque document.
    backend: serde::Value,
    ledger: TokenLedgerState,
    reputation: Vec<ReputationTableState>,
    registry: Vec<(MessageId, NodeId)>,
    meta: Vec<(NodeId, MessageId, CarriedMeta)>,
    pending: Vec<(NodeId, NodeId, MessageId, PendingOffer)>,
    open_adj: Vec<Vec<NodeId>>,
    last_exchange: Vec<(NodeId, NodeId, SimTime)>,
    participation_rng: RngState,
    judge_rng: RngState,
    enrich_rng: RngState,
    /// `None` encodes the non-finite force-next-sample sentinel
    /// (JSON cannot carry `-inf`).
    last_sample: Option<f64>,
    stats: ProtocolStats,
    watchdogs: Vec<WatchdogState>,
    strategy_state: Vec<StrategyState>,
}

use dtn_sim::world::ordered_pair as pair;

thread_local! {
    /// Reused keyword buffer for the offer path — one message's deduped
    /// keyword list per call, never observable across calls.
    static KW_SCRATCH: std::cell::RefCell<Vec<dtn_sim::message::Keyword>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl DcimRouter {
    /// Creates the router for `node_count` nodes over the paper's ChitChat
    /// substrate.
    ///
    /// All nodes start honest with the default role; the workload assigns
    /// behaviors, roles and subscriptions before the run.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    #[must_use]
    pub fn new(node_count: usize, params: ProtocolParams, seed: u64) -> Self {
        let backend = ChitChatBackend::new(node_count, params.chitchat);
        Self::with_backend(backend, params, seed)
    }

    /// `node`'s RTSR interest table.
    #[must_use]
    pub fn table(&self, node: NodeId) -> &InterestTable {
        self.backend.table(node)
    }
}

impl<B: RouterBackend> DcimRouter<B> {
    /// Creates the router over an arbitrary routing backend: the same
    /// overlay (participation gate, credits, DRM, enrichment, audits)
    /// wrapping the backend's forwarding rule.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    #[must_use]
    pub fn with_backend(backend: B, params: ProtocolParams, seed: u64) -> Self {
        params.validate().expect("protocol params must validate");
        let node_count = backend.node_count();
        DcimRouter {
            backend,
            roles: vec![Role::default(); node_count],
            behaviors: vec![NodeBehavior::Honest; node_count],
            ledger: TokenLedger::new(node_count, Tokens::new(params.incentive.initial_tokens)),
            reputation: (0..node_count)
                .map(|i| ReputationTable::new(NodeId(i as u32), params.rating))
                .collect(),
            registry: FirstDeliveryRegistry::new(),
            meta: FxHashMap::default(),
            pending: FxHashMap::default(),
            open_adj: vec![Vec::new(); node_count],
            exchange_wheel: ExchangeWheel::new(),
            due_scratch: Vec::new(),
            participation_rng: SimRng::new(seed ^ 0xD0C1_33D5).stream(1),
            judge_rng: SimRng::new(seed ^ 0xD0C1_33D5).stream(2),
            enrich_rng: SimRng::new(seed ^ 0xD0C1_33D5).stream(3),
            last_sample: 0.0,
            params,
            stats: ProtocolStats::default(),
            strategies: vec![None; node_count],
            strategy_mode: false,
            strategy_defense: false,
            watchdogs: Vec::new(),
            strategy_state: Vec::new(),
            digest_scratch: (GossipDigest::default(), GossipDigest::default()),
            route_ids_scratch: Vec::new(),
            route_keyed_scratch: Vec::new(),
            route_order: (0..node_count).map(|_| RouteOrder::default()).collect(),
        }
    }

    /// Subscribes `node` to direct interests (the `Subscribe` operator).
    pub fn subscribe(
        &mut self,
        node: NodeId,
        keywords: impl IntoIterator<Item = dtn_sim::message::Keyword>,
    ) {
        for kw in keywords {
            self.backend.subscribe(node, kw, SimTime::ZERO);
        }
    }

    /// Sets `node`'s behavior.
    pub fn set_behavior(&mut self, node: NodeId, behavior: NodeBehavior) {
        self.behaviors[node.index()] = behavior;
    }

    /// Sets `node`'s role in the hierarchy.
    pub fn set_role(&mut self, node: NodeId, role: Role) {
        self.roles[node.index()] = role;
    }

    /// Assigns (or clears) `node`'s economic strategy.
    ///
    /// # Panics
    ///
    /// Panics if the strategy's parameters fail validation.
    pub fn set_strategy(&mut self, node: NodeId, strategy: Option<StrategyKind>) {
        if let Some(s) = strategy {
            s.validate().expect("strategy params must validate");
        }
        self.strategies[node.index()] = strategy;
        self.strategy_mode = self.strategies.iter().any(Option::is_some);
        self.ensure_adversarial_state();
    }

    /// Arms or disarms the countermeasures: digests are issued with
    /// monotonic sequence numbers and absorbed weighted by the observer's
    /// rating of the reporter, and custody hand-offs to watchdog-suspicious
    /// forwarders are withheld.
    pub fn set_strategy_defense(&mut self, armed: bool) {
        self.strategy_defense = armed;
        self.ensure_adversarial_state();
    }

    /// `node`'s economic strategy, if any.
    #[must_use]
    pub fn strategy(&self, node: NodeId) -> Option<StrategyKind> {
        self.strategies[node.index()]
    }

    /// `node`'s forwarding watchdog (`None` until strategies or the
    /// defense are configured).
    #[must_use]
    pub fn watchdog(&self, node: NodeId) -> Option<&Watchdog> {
        self.watchdogs.get(node.index())
    }

    /// The combined token balance of every strategy-playing node: the
    /// slice of the closed economy the attackers currently hold.
    #[must_use]
    pub fn attacker_tokens(&self) -> f64 {
        self.strategies
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| self.ledger.balance(NodeId(i as u32)).amount())
            // fold, not sum: an empty f64 sum is -0.0, which would leak a
            // negative zero into the CSV for attacker-free runs.
            .fold(0.0, |acc, balance| acc + balance)
    }

    /// Whether any adversarial machinery (strategies or defenses) is live.
    fn adversarial(&self) -> bool {
        self.strategy_mode || self.strategy_defense
    }

    /// Allocates the lazy per-node adversarial state on first use.
    fn ensure_adversarial_state(&mut self) {
        if self.adversarial() && self.watchdogs.is_empty() {
            let n = self.backend.node_count();
            self.watchdogs = vec![Watchdog::new(); n];
            self.strategy_state = vec![StrategyState::default(); n];
        }
    }

    /// Moves tokens between nodes before (or during) a run — deployment
    /// provisioning such as funding a data mule from its users. Transfers
    /// keep the economy closed; the network total is unchanged.
    ///
    /// # Errors
    ///
    /// Fails without moving anything when `from` cannot cover the amount.
    pub fn transfer_tokens(
        &mut self,
        from: NodeId,
        to: NodeId,
        amount: Tokens,
    ) -> Result<(), dtn_incentive::ledger::InsufficientTokens> {
        self.ledger.transfer(from, to, amount)
    }

    /// The protocol parameters.
    #[must_use]
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// The token ledger (read-only).
    #[must_use]
    pub fn ledger(&self) -> &TokenLedger {
        &self.ledger
    }

    /// The routing backend.
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// `node`'s reputation table.
    #[must_use]
    pub fn reputation(&self, node: NodeId) -> &ReputationTable {
        &self.reputation[node.index()]
    }

    /// `node`'s behavior.
    #[must_use]
    pub fn behavior(&self, node: NodeId) -> NodeBehavior {
        self.behaviors[node.index()]
    }

    /// The mechanism's internal counters.
    #[must_use]
    pub fn stats(&self) -> ProtocolStats {
        self.stats
    }

    /// All malicious node ids.
    #[must_use]
    pub fn malicious_nodes(&self) -> Vec<NodeId> {
        self.behaviors
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_malicious())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// All honest (non-malicious, non-selfish) node ids.
    #[must_use]
    pub fn honest_nodes(&self) -> Vec<NodeId> {
        self.behaviors
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b, NodeBehavior::Honest))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// The current network-wide average rating of malicious nodes as seen
    /// by honest nodes (the Fig. 5.4 quantity).
    #[must_use]
    pub fn malicious_average_rating(&self) -> f64 {
        average_rating_of(
            &self.reputation,
            &self.honest_nodes(),
            &self.malicious_nodes(),
        )
    }

    /// Whether `node`'s medium is open for this encounter.
    ///
    /// Minority-game players decide deterministically — open while still
    /// exploring (first ten contacts) or while the realized token yield
    /// per contact beats their energy cost, plus a probe every twentieth
    /// sat-out contact to re-sample the market. Everyone else draws the
    /// behavior gate (selfish duty cycle) as before; the deterministic
    /// branch makes no RNG draws, matching `Honest`.
    fn participation_decision(&mut self, node: NodeId) -> bool {
        if let Some(StrategyKind::MinorityGame { energy_cost }) = self.strategies[node.index()] {
            let initial = self.params.incentive.initial_tokens;
            let earned = self.ledger.balance(node).amount() - initial;
            let st = &mut self.strategy_state[node.index()];
            st.contacts += 1;
            let yield_per_contact = earned / st.contacts as f64;
            if st.contacts <= 10 || yield_per_contact >= energy_cost {
                st.skipped = 0;
                true
            } else {
                st.skipped += 1;
                st.skipped.is_multiple_of(20)
            }
        } else {
            self.behaviors[node.index()].participates(&mut self.participation_rng)
        }
    }

    /// Whitewash churn: once its network-wide average rating has sunk
    /// below neutral and the churn interval has elapsed, the node sheds
    /// its identity — every other observer forgets its opinion (and the
    /// issuer's replay watermark), every watchdog forgets its forwarding
    /// record, and the node restarts from the neutral prior. Its token
    /// balance survives the churn: the economy stays closed.
    fn maybe_whitewash(&mut self, now: SimTime, node: NodeId) {
        let Some(StrategyKind::Whitewasher {
            churn_interval_secs,
        }) = self.strategies[node.index()]
        else {
            return;
        };
        let t = now.as_secs();
        if t - self.strategy_state[node.index()].last_churn < churn_interval_secs {
            return;
        }
        let observers: Vec<NodeId> = (0..self.backend.node_count() as u32)
            .map(NodeId)
            .filter(|&n| n != node)
            .collect();
        let avg = average_rating_of(&self.reputation, &observers, &[node]);
        if avg >= self.params.rating.neutral_rating {
            return;
        }
        self.strategy_state[node.index()].last_churn = t;
        for table in &mut self.reputation {
            if table.owner() != node {
                table.forget(node);
            }
        }
        for (i, watchdog) in self.watchdogs.iter_mut().enumerate() {
            if i != node.index() {
                watchdog.forget(node);
            }
        }
        self.stats.whitewash_churns += 1;
    }

    /// Whether the contact between `a` and `b` is open (both media on).
    fn pair_is_open(&self, a: NodeId, b: NodeId) -> bool {
        self.open_adj[a.index()].binary_search(&b).is_ok()
    }

    /// Marks the contact between `a` and `b` open.
    fn open_pair(&mut self, a: NodeId, b: NodeId) {
        for (x, y) in [(a, b), (b, a)] {
            let list = &mut self.open_adj[x.index()];
            if let Err(i) = list.binary_search(&y) {
                list.insert(i, y);
            }
        }
    }

    /// Marks the contact between `a` and `b` closed.
    fn close_pair(&mut self, a: NodeId, b: NodeId) {
        for (x, y) in [(a, b), (b, a)] {
            let list = &mut self.open_adj[x.index()];
            if let Ok(i) = list.binary_search(&y) {
                list.remove(i);
            }
        }
    }

    /// Backend state exchange plus reputation gossip for one pair.
    fn exchange(&mut self, api: &SimApi, a: NodeId, b: NodeId, connected_secs: f64) {
        let now = api.now();
        // The backend's exchange ritual (ChitChat's RTSR decay/growth) is
        // shared between the overlay-on and overlay-off arms — both must
        // run the identical substrate. Only the peer set differs: closed
        // (selfish) media do not count as connected devices — which is
        // exactly the open adjacency (entries exist only while the contact
        // is up).
        self.backend.exchange(
            now,
            a,
            b,
            connected_secs,
            &self.open_adj[a.index()],
            &self.open_adj[b.index()],
        );

        if self.params.drm_enabled {
            // Both digests go through the reusable scratch pair rather
            // than fresh allocations (two ~node-count vectors per due
            // pair, every settlement tick).
            let (digest_a, digest_b) = (&mut self.digest_scratch.0, &mut self.digest_scratch.1);
            if self.strategy_defense {
                // Countermeasure gossip: each digest carries the issuer's
                // monotonic sequence number (replayed or stale copies are
                // rejected) and is absorbed discounted by the observer's
                // own rating of the reporter — a liar's poisoned digest
                // moves opinions only as far as the liar is trusted.
                self.reputation[a.index()].issue_digest_into(digest_a);
                self.reputation[b.index()].issue_digest_into(digest_b);
                let max = self.params.rating.max_rating;
                let trust_in_b = self.reputation[a.index()].rating_of(b) / max;
                let trust_in_a = self.reputation[b.index()].rating_of(a) / max;
                if !self.reputation[a.index()].absorb_digest_weighted(b, digest_b, trust_in_b) {
                    self.stats.gossip_replays_rejected += 1;
                }
                if !self.reputation[b.index()].absorb_digest_weighted(a, digest_a, trust_in_a) {
                    self.stats.gossip_replays_rejected += 1;
                }
            } else {
                // Both absorbs run in place straight out of each other's
                // (pre-merge) opinion rows — bit-identical to the
                // symmetric two-digest exchange with no digest
                // materialized at all.
                let (lo, hi) = self.reputation.split_at_mut(a.index().max(b.index()));
                let (ra, rb) = if a < b {
                    (&mut lo[a.index()], &mut hi[0])
                } else {
                    (&mut hi[0], &mut lo[b.index()])
                };
                ReputationTable::absorb_mutual(ra, rb);
            }
        }
    }

    /// Routes all of `from`'s messages toward `to` per the mechanism.
    ///
    /// With the incentive enabled, offers go out highest-priority,
    /// highest-quality first ("our approach prioritizes messages based on
    /// the quality as well as the assigned priority", Fig. 5.6 discussion)
    /// — under bandwidth contention this is what delivers more high-
    /// priority messages than plain ChitChat.
    fn route(&mut self, api: &mut SimApi, from: NodeId, to: NodeId) {
        let generation = api.buffer(from).generation();
        if self.route_order[from.index()].generation != Some(generation) {
            self.rebuild_route_order(api, from, generation);
        }
        // The offer loop needs `&mut self`, so the pass iterates a scratch
        // copy of the cached order (a memcpy of ids — far cheaper than the
        // keyed sort it replaces; route runs twice per contact event and
        // twice per due pair every settlement tick).
        let mut ids = std::mem::take(&mut self.route_ids_scratch);
        ids.clear();
        let cached = &self.route_order[from.index()];
        ids.extend_from_slice(&cached.ids);
        let maxima = cached.maxima;
        let sender_rating = self.sender_rating(from, to);
        for &id in &ids {
            self.offer_with_maxima(api, from, to, id, maxima, sender_rating);
        }
        self.route_ids_scratch = ids;
    }

    /// Recomputes `from`'s offer ordering and buffer maxima into the
    /// per-node cache, stamping it with the buffer generation observed by
    /// the caller. Purely a function of the buffer contents, so cache
    /// reuse cannot change behavior.
    fn rebuild_route_order(&mut self, api: &SimApi, from: NodeId, generation: u64) {
        let mut ids = std::mem::take(&mut self.route_order[from.index()].ids);
        ids.clear();
        if self.params.incentive_enabled {
            // One pass over the buffer, no id-sort prepass: the comparator
            // ends in the message id, a total order, so the offer sequence
            // is deterministic whatever order the buffer iterates in.
            let mut keyed = std::mem::take(&mut self.route_keyed_scratch);
            keyed.clear();
            keyed.extend(
                api.buffer(from)
                    .iter()
                    .map(|c| (c.body.priority.level(), -c.body.quality.value(), c.id())),
            );
            keyed.sort_unstable_by(|a, b| {
                a.0.cmp(&b.0)
                    .then(a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .then(a.2.cmp(&b.2))
            });
            ids.extend(keyed.iter().map(|&(_, _, id)| id));
            self.route_keyed_scratch = keyed;
        } else {
            api.buffer(from).ids_sorted_into(&mut ids);
        }
        let cache = &mut self.route_order[from.index()];
        cache.ids = ids;
        cache.maxima = Self::buffer_maxima(api, from);
        cache.generation = Some(generation);
    }

    /// `to`'s opinion of `from`, for the DRM avoidance gate. Reputation is
    /// never written during an offer, so one lookup covers a whole routing
    /// pass; with DRM off the gate never reads the value.
    fn sender_rating(&self, from: NodeId, to: NodeId) -> f64 {
        if self.params.drm_enabled {
            self.reputation[to.index()].rating_of(from)
        } else {
            0.0
        }
    }

    /// `(S_m, Q_m)`: the largest size and best quality among `from`'s
    /// buffered messages (Table 3.1's normalization terms). Computed once
    /// per routing pass — recomputing inside every offer made the full-
    /// scale runs quadratic in buffer occupancy.
    fn buffer_maxima(api: &SimApi, from: NodeId) -> (u64, f64) {
        let mut s_m = 0u64;
        let mut q_m = 0.0f64;
        for c in api.buffer(from).iter() {
            s_m = s_m.max(c.size_bytes());
            q_m = q_m.max(c.body.quality.value());
        }
        (s_m, q_m)
    }

    /// Offers one message across one (open) direction of a contact,
    /// computing the sender's buffer maxima on the spot (single-message
    /// call sites: message creation, post-reception forwarding).
    fn offer(&mut self, api: &mut SimApi, from: NodeId, to: NodeId, id: MessageId) {
        let cached = &self.route_order[from.index()];
        let maxima = if cached.generation == Some(api.buffer(from).generation()) {
            cached.maxima
        } else {
            Self::buffer_maxima(api, from)
        };
        let sender_rating = self.sender_rating(from, to);
        self.offer_with_maxima(api, from, to, id, maxima, sender_rating);
    }

    /// Offers one message with precomputed buffer maxima and sender rating.
    fn offer_with_maxima(
        &mut self,
        api: &mut SimApi,
        from: NodeId,
        to: NodeId,
        id: MessageId,
        maxima: (u64, f64),
        sender_rating: f64,
    ) {
        if !self.pair_is_open(from, to) {
            return;
        }
        if api.buffer(to).contains(id) || api.is_sending(from, to, id) {
            return;
        }
        // The message's keyword list lives in a reused thread-local
        // buffer: this path runs per (pair, message) every settlement
        // tick, and the old per-call `Vec` was a top allocation site.
        let mut kw = KW_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
        self.offer_with_keywords(api, from, to, id, maxima, sender_rating, &mut kw);
        KW_SCRATCH.with(|s| *s.borrow_mut() = kw);
    }

    /// [`Self::offer_with_maxima`] past the duplicate checks, writing the
    /// message's keywords into `keywords` (a reused scratch buffer).
    #[allow(clippy::too_many_arguments)] // internal continuation of the offer path
    fn offer_with_keywords(
        &mut self,
        api: &mut SimApi,
        from: NodeId,
        to: NodeId,
        id: MessageId,
        maxima: (u64, f64),
        sender_rating: f64,
        keywords: &mut Vec<dtn_sim::message::Keyword>,
    ) {
        let Some(copy) = api.buffer(from).get(id) else {
            return;
        };
        copy.keywords_into(keywords);
        let keywords: &[dtn_sim::message::Keyword] = keywords;
        let priority = copy.body.priority;
        let size = copy.size_bytes();
        let quality = copy.body.quality.value();
        let source = copy.body.source;
        if !self.backend.may_offer(from, source) {
            return;
        }
        let dest = self.backend.is_destination(to, keywords);
        if dest && api.is_delivered(to, id) {
            return;
        }
        let incentive_on = self.params.incentive_enabled;

        // DRM avoidance: nodes refuse receptions from senders they have
        // come to consider malicious ("enabling other nodes to avoid
        // receiving from malicious nodes", Paper I, §1.3.3).
        if self.params.drm_enabled && sender_rating < self.params.avoid_rating_threshold {
            self.stats.refused_distrusted_sender += 1;
            return;
        }

        // The starvation rule: a broke destination receives nothing.
        if dest && incentive_on && self.ledger.balance(to).is_zero() {
            self.stats.refused_broke_destination += 1;
            return;
        }

        // The backend's relay rule (ChitChat: `S_v > S_u`).
        if !dest && !self.backend.accepts_relay(from, to, id, source, keywords) {
            return;
        }

        // Countermeasure custody gate: the sender's own watchdog evidence
        // — hand-offs to `to` that were never seen forwarded onward —
        // withholds relay custody from suspected droppers. Destinations
        // are exempt: delivering to a free-rider's direct interest is
        // still a delivery.
        if !dest && self.strategy_defense && self.watchdogs[from.index()].is_suspicious(to, 0.3, 5)
        {
            self.stats.refused_suspected_dropper += 1;
            return;
        }

        // Quote the software promise (Algorithm 3) for the receiver.
        let software =
            self.quote_software(api, from, to, keywords, size, quality, priority, maxima);

        // Relay-threshold prepayment: the receiver pays for high-value
        // hand-offs up front, or does not receive the message at all.
        let mut prepay = None;
        if !dest && incentive_on {
            let mean = self.backend.mean_weight(to, keywords);
            if let Some(amount) =
                relay_prepayment(mean, Tokens::new(software), &self.params.incentive)
            {
                if !self.ledger.can_pay(to, amount) {
                    self.stats.refused_unaffordable_prepay += 1;
                    return;
                }
                prepay = Some(amount.amount());
            }
        }

        if api.send(from, to, id) {
            self.backend.on_send_initiated(from, to, id, dest);
            self.pending.insert(
                (from, to, id),
                PendingOffer {
                    software_promise: software,
                    prepay,
                },
            );
        }
    }

    /// Computes the software-factor promise `I_s` from `from` to `to`.
    #[allow(clippy::too_many_arguments)] // mirrors Algorithm 3's symbol list
    fn quote_software(
        &self,
        api: &SimApi,
        from: NodeId,
        to: NodeId,
        keywords: &[dtn_sim::message::Keyword],
        size: u64,
        quality: f64,
        priority: Priority,
        maxima: (u64, f64),
    ) -> f64 {
        if !self.params.incentive_enabled {
            return 0.0;
        }
        // w_m: the best sum of weights among the sender's open peers.
        let mut w_m: f64 = self.backend.interest_sum(to, keywords);
        for &peer in api.peers_of_slice(from) {
            if self.pair_is_open(from, peer) {
                w_m = w_m.max(self.backend.interest_sum(peer, keywords));
            }
        }
        // S_m / Q_m: maxima over the sender's buffer (precomputed per
        // routing pass), floored by this message's own values.
        let s_m = maxima.0.max(size);
        let q_m = maxima.1.max(quality);
        let factors = SoftwareFactors {
            receiver_interest_sum: self.backend.interest_sum(to, keywords),
            max_connected_interest_sum: w_m,
            size_bytes: size,
            max_size_bytes: s_m,
            quality,
            max_quality: q_m,
            sender_role: self.roles[from.index()],
            receiver_role: self.roles[to.index()],
            source_priority: priority.level(),
        };
        software_incentive(&factors, &self.params.incentive).amount()
    }

    /// Settles a first delivery: destination `to` pays deliverer `from`.
    ///
    /// `software_quote` is `I_s` for the delivery hop, computed at offer
    /// time (operator function 8: the deliverer "computes the incentive
    /// tokens and requests them from the destination before forwarding").
    fn settle(
        &mut self,
        api: &mut SimApi,
        from: NodeId,
        to: NodeId,
        id: MessageId,
        software_quote: f64,
        tx_joules: f64,
    ) {
        if !self.registry.try_claim(id, to) {
            return;
        }
        // Count the settlement at claim time: `settlements` mirrors the
        // registry exactly (the no-double-pay audit in `check_invariants`
        // compares the two), even if the paid amount below works out to
        // zero or the copy vanished between delivery and settlement.
        self.stats.settlements += 1;
        let deliverer_meta = self.meta.get(&(from, id)).cloned().unwrap_or_default();
        let Some(copy) = api.buffer(to).get(id) else {
            return;
        };
        let is_source = copy.body.source == from;

        // I_h: the deliverer's measured energy, converted to tokens: the
        // transmission of this delivery plus (for a relay) the reception
        // that brought it the copy. The promise crate exposes the formula
        // in terms of power×time; here we have joules directly, so apply
        // the c constant to the energy sums.
        let hardware = if self.params.hardware_factor_enabled {
            let joules = if is_source {
                tx_joules
            } else {
                tx_joules + deliverer_meta.rx_joules
            };
            self.params.incentive.energy_c * joules
        } else {
            0.0
        };
        let promise = (software_quote + hardware).min(self.params.incentive.max_incentive);

        // I_t: the deliverer's own *enrichment* tags the destination finds
        // relevant (ground-truth oracle; the destination "only compensates
        // for x tags"). A source's creation-time annotations are the
        // message, not enrichment — they earn no I_t.
        let relevant_tags = copy
            .enrichment_tags_by(from)
            .into_iter()
            .filter(|&k| copy.body.truth_contains(k))
            .count();
        let tag_reward = tag_incentive(relevant_tags, &self.params.incentive);

        let deliverer_rating = if self.params.drm_enabled {
            self.reputation[to.index()].rating_of(from)
        } else {
            self.params.rating.neutral_rating
        };
        let inputs = AwardInputs {
            promise: Tokens::new(promise),
            tag_reward,
            path_ratings: deliverer_meta.path_ratings.clone(),
            deliverer_rating,
        };
        let due = award(&inputs, &self.params.incentive);
        let paid = self.ledger.transfer_up_to(to, from, due);
        self.stats.tokens_awarded += paid.amount();
    }

    /// Captures the mechanism's dynamic state for a whole-world snapshot.
    fn export_state(&self) -> DcimState {
        let mut meta: Vec<(NodeId, MessageId, CarriedMeta)> = self
            .meta
            .iter()
            .map(|(&(n, m), c)| (n, m, c.clone()))
            .collect();
        meta.sort_unstable_by_key(|&(n, m, _)| (n, m));
        let mut pending: Vec<(NodeId, NodeId, MessageId, PendingOffer)> = self
            .pending
            .iter()
            .map(|(&(f, t, m), &o)| (f, t, m, o))
            .collect();
        pending.sort_unstable_by_key(|&(f, t, m, _)| (f, t, m));
        let mut last_exchange: Vec<(NodeId, NodeId, SimTime)> = self
            .exchange_wheel
            .iter()
            .map(|((a, b), t)| (a, b, t))
            .collect();
        last_exchange.sort_unstable_by_key(|&(a, b, _)| (a, b));
        DcimState {
            backend: self.backend.snapshot_state(),
            ledger: self.ledger.export_state(),
            reputation: self
                .reputation
                .iter()
                .map(ReputationTable::export_state)
                .collect(),
            registry: self.registry.export_state(),
            meta,
            pending,
            open_adj: self.open_adj.clone(),
            last_exchange,
            participation_rng: self.participation_rng.state(),
            judge_rng: self.judge_rng.state(),
            enrich_rng: self.enrich_rng.state(),
            last_sample: self.last_sample.is_finite().then_some(self.last_sample),
            stats: self.stats,
            watchdogs: self.watchdogs.iter().map(Watchdog::export_state).collect(),
            strategy_state: self.strategy_state.clone(),
        }
    }

    /// Overwrites the mechanism's dynamic state from a snapshot, after
    /// cross-checking it against this router's configuration.
    fn import_state(&mut self, state: &DcimState) -> Result<(), String> {
        let n = self.backend.node_count();
        if state.reputation.len() != n {
            return Err(format!(
                "snapshot holds {} reputation tables for a {n}-node protocol",
                state.reputation.len()
            ));
        }
        if state.open_adj.len() != n {
            return Err(format!(
                "snapshot holds {} adjacency lists for a {n}-node protocol",
                state.open_adj.len()
            ));
        }
        // The adversarial arrays are allocated from configuration, not
        // from the snapshot — the snapshot must agree with the arm this
        // router was built for.
        self.ensure_adversarial_state();
        if state.watchdogs.len() != self.watchdogs.len() {
            return Err(format!(
                "snapshot holds {} watchdogs but this configuration allocates {}",
                state.watchdogs.len(),
                self.watchdogs.len()
            ));
        }
        if state.strategy_state.len() != self.strategy_state.len() {
            return Err(format!(
                "snapshot holds {} strategy records but this configuration allocates {}",
                state.strategy_state.len(),
                self.strategy_state.len()
            ));
        }
        self.backend.restore_state(&state.backend)?;
        self.ledger.import_state(&state.ledger)?;
        for (table, doc) in self.reputation.iter_mut().zip(&state.reputation) {
            table.import_state(doc);
        }
        self.registry.import_state(&state.registry);
        self.meta = state
            .meta
            .iter()
            .map(|(n, m, c)| ((*n, *m), c.clone()))
            .collect();
        self.pending = state
            .pending
            .iter()
            .map(|&(f, t, m, o)| ((f, t, m), o))
            .collect();
        self.open_adj.clone_from(&state.open_adj);
        // The wheel's schedule is derived state: only the `pair →
        // last-serviced` rows travel in the snapshot, and the next
        // settlement drain rebuilds the buckets against the live clock.
        self.exchange_wheel
            .restore(state.last_exchange.iter().map(|&(a, b, t)| ((a, b), t)));
        self.participation_rng = SimRng::from_state(state.participation_rng);
        self.judge_rng = SimRng::from_state(state.judge_rng);
        self.enrich_rng = SimRng::from_state(state.enrich_rng);
        self.last_sample = state.last_sample.unwrap_or(f64::NEG_INFINITY);
        self.stats = state.stats;
        for (watchdog, doc) in self.watchdogs.iter_mut().zip(&state.watchdogs) {
            watchdog.import_state(doc);
        }
        self.strategy_state.clone_from(&state.strategy_state);
        Ok(())
    }

    /// Fig. 5.4 sampling plus broke-node tracking.
    fn sample(&mut self, api: &mut SimApi) {
        let now = api.now().as_secs();
        if now - self.last_sample < self.params.sample_interval_secs {
            return;
        }
        self.last_sample = now;
        // Reconcile the carried-meta side table: creation-time buffer
        // evictions are reported only to statistics, so entries for copies
        // no longer buffered are dropped here rather than leaking.
        self.meta
            .retain(|&(node, id), _| api.buffer(node).contains(id));
        if self.params.drm_enabled && !self.malicious_nodes().is_empty() {
            let avg = self.malicious_average_rating();
            api.push_sample(MALICIOUS_RATING_SERIES, avg);
        }
        if self.params.incentive_enabled {
            api.push_sample(BROKE_NODES_SERIES, self.ledger.broke_nodes().len() as f64);
        }
    }
}

impl<B: RouterBackend> Protocol for DcimRouter<B> {
    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        // Participation gate: either endpoint's closed medium kills the
        // contact for its whole duration (for the backend too — a closed
        // medium exchanges nothing).
        let a_open = self.participation_decision(a);
        let b_open = self.participation_decision(b);
        if !(a_open && b_open) {
            return;
        }
        if self.strategy_mode {
            self.maybe_whitewash(api.now(), a);
            self.maybe_whitewash(api.now(), b);
        }
        self.open_pair(a, b);
        self.backend.on_contact_open(api.now(), a, b);
        self.exchange(api, a, b, api.step_len().as_secs());
        self.exchange_wheel
            .note_serviced(pair(a, b), api.now(), api.counters().steps);
        self.route(api, a, b);
        self.route(api, b, a);
    }

    fn on_contact_down(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        let _ = api;
        let key = pair(a, b);
        self.close_pair(a, b);
        self.exchange_wheel.remove(key);
        // Offers that never completed are void.
        self.pending.retain(|&(f, t, _), _| pair(f, t) != key);
    }

    fn on_message_created(&mut self, api: &mut SimApi, node: NodeId, message: MessageId) {
        // The source holds its copy with no promise attached.
        self.meta.insert((node, message), CarriedMeta::default());
        self.backend.on_message_created(node, message);
        for peer in api.peers_of(node) {
            self.offer(api, node, peer, message);
        }
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
        let (from, to, id) = (r.transfer.from, r.transfer.to, r.transfer.message);
        let offer = self.pending.remove(&(from, to, id));
        let InsertOutcome::Stored { .. } = r.outcome else {
            self.backend.on_send_failed(from, to, id);
            return;
        };

        // Execute the relay prepayment decided at offer time. The paper's
        // rule is pay-or-no-reception: if the receiver can no longer cover
        // the quote (its balance moved during the transfer), the hand-off
        // is void — the copy is dropped and nothing downstream happens.
        if let Some(prepay) = offer.and_then(|o| o.prepay) {
            if self.params.incentive_enabled {
                let amount = Tokens::new(prepay);
                if self.ledger.transfer(to, from, amount).is_ok() {
                    self.stats.prepayments += 1;
                    self.stats.tokens_prepaid += prepay;
                } else {
                    self.stats.refused_unaffordable_prepay += 1;
                    api.buffer_mut(to).remove(id);
                    self.backend.on_send_failed(from, to, id);
                    return;
                }
            }
        }
        self.backend.on_stored(from, to, id);

        // Classify delivery against the tags as *received* — before the
        // receiver's own enrichment below, which must not convert its hop
        // into a delivery it then settles against itself.
        let keywords_at_arrival = api
            .buffer(to)
            .get(id)
            .map(|c| c.keywords())
            .unwrap_or_default();
        let dest_at_arrival = self.backend.is_destination(to, &keywords_at_arrival);

        let inherited = self.meta.get(&(from, id)).cloned().unwrap_or_default();

        // Watchdog bookkeeping (adversarial runs only): a relay store is a
        // custody hand-off the giver now watches; any onward forward
        // confirms the hand-off that brought *this* sender its copy.
        if self.adversarial() {
            if !dest_at_arrival {
                self.watchdogs[from.index()].record_handoff(to, id);
            }
            if let Some(giver) = inherited.received_from {
                self.watchdogs[giver.index()].record_confirmation(from, id);
            }
        }

        // Free-riders accept relay custody and silently discard the copy:
        // the hand-off looked cooperative (and any prepayment credit
        // stands), but nothing is carried, judged, enriched or re-offered.
        // Only the giver's watchdog — a confirmation that never arrives —
        // can see this; the content DRM never rates a dropped message.
        if !dest_at_arrival && self.strategies[to.index()] == Some(StrategyKind::FreeRider) {
            api.buffer_mut(to).remove(id);
            self.backend.on_removed(to, &[id]);
            self.meta.remove(&(to, id));
            self.stats.strategy_drops += 1;
            return;
        }

        // Attach the carried incentive state to the new holder.
        let mut new_meta = CarriedMeta {
            rx_joules: r.rx_joules,
            path_ratings: inherited.path_ratings,
            received_from: Some(from),
        };

        // DRM: the receiver judges the annotating nodes on the path (a
        // human act — performed only for a fraction of receptions).
        if self.params.drm_enabled && self.judge_rng.chance(self.params.rating_prob) {
            if let Some(copy) = api.buffer(to).get(id) {
                // `copy` borrows api immutably while judging mutates only
                // `self` fields — disjoint borrows, no clone needed.
                let judgements =
                    judge_message(copy, to, &self.params.rating, 0.25, &mut self.judge_rng);
                let farmer_ring = match self.strategies[to.index()] {
                    Some(StrategyKind::TagFarmer { ring }) => Some(ring),
                    _ => None,
                };
                for j in &judgements {
                    // A colluding tag-farmer's verdict is a foregone
                    // conclusion: fellow ring members get the top rating,
                    // outsiders get zero — the judgement draws still
                    // happen (same rng stream shape), only the verdict is
                    // overridden.
                    let message_rating = if let Some(ring) = farmer_ring {
                        let same_ring = matches!(
                            self.strategies[j.subject.index()],
                            Some(StrategyKind::TagFarmer { ring: r }) if r == ring
                        );
                        if same_ring {
                            self.params.rating.max_rating
                        } else {
                            0.0
                        }
                    } else if j.is_source {
                        source_message_rating(&j.judgement, &self.params.rating)
                    } else {
                        relay_message_rating(&j.judgement, &self.params.rating)
                    };
                    self.reputation[to.index()].record_message_rating(j.subject, message_rating);
                    if j.is_source {
                        // "They share this rating with the next hop": the
                        // message carries its accumulated ratings onward.
                        new_meta.path_ratings.push(message_rating);
                    }
                }
            }
        }
        self.meta.insert((to, id), new_meta);

        // Content enrichment by the new holder. Tag farmers and
        // whitewashers pollute carried content exactly like the paper's
        // malicious nodes — the strategies differ in how they launder the
        // reputational consequences, not in the pollution itself.
        let behavior = match self.strategies[to.index()] {
            Some(StrategyKind::TagFarmer { .. } | StrategyKind::Whitewasher { .. }) => {
                NodeBehavior::Malicious
            }
            _ => self.behaviors[to.index()],
        };
        let enr_params = self.params;
        let now = api.now();
        if let Some(copy) = api.buffer_mut(to).get_mut(id) {
            let result = enrich_copy(copy, to, behavior, &enr_params, now, &mut self.enrich_rng);
            self.stats.relevant_tags_added += result.relevant_added.len() as u64;
            self.stats.irrelevant_tags_added += result.irrelevant_added.len() as u64;
        }

        // Delivery and settlement (against the arrival-time tag set).
        if dest_at_arrival {
            let fresh = api.mark_delivered(to, id);
            if fresh && self.params.incentive_enabled {
                let quote = offer.map_or(0.0, |o| o.software_promise);
                self.settle(api, from, to, id, quote, r.tx_joules);
            }
        }

        // Offer the fresh copy onward over open contacts.
        for peer in api.peers_of(to) {
            self.offer(api, to, peer, id);
        }
    }

    fn on_transfer_aborted(
        &mut self,
        api: &mut SimApi,
        aborted: &dtn_sim::transfer::AbortedTransfer,
    ) {
        let _ = api;
        self.pending
            .remove(&(aborted.from, aborted.to, aborted.message));
        self.backend
            .on_send_failed(aborted.from, aborted.to, aborted.message);
    }

    fn on_expired(&mut self, api: &mut SimApi, node: NodeId, messages: &[MessageId]) {
        let _ = api;
        for &m in messages {
            self.meta.remove(&(node, m));
        }
        self.backend.on_removed(node, messages);
    }

    fn on_evicted(&mut self, api: &mut SimApi, node: NodeId, messages: &[MessageId]) {
        let _ = api;
        for &m in messages {
            self.meta.remove(&(node, m));
        }
        self.backend.on_removed(node, messages);
    }

    fn on_tick(&mut self, api: &mut SimApi) {
        // Periodic re-exchange for long-lived open contacts (open pairs
        // are exactly the watched pairs of the wheel: both are maintained
        // together on contact up/down). The wheel emits the same sorted
        // `(pair, credited)` rows the full scan produced, touching only
        // pairs actually due.
        let now = api.now();
        let step = api.counters().steps;
        let mut due = std::mem::take(&mut self.due_scratch);
        self.exchange_wheel.drain_due_into(
            now,
            step,
            self.params.chitchat.exchange_interval_secs,
            api.step_len().as_secs(),
            &mut due,
        );
        for &((a, b), credited) in &due {
            self.exchange(api, a, b, credited);
            self.exchange_wheel.note_serviced((a, b), now, step);
            self.route(api, a, b);
            self.route(api, b, a);
        }
        self.due_scratch = due;
        self.sample(api);
    }

    fn on_finish(&mut self, api: &mut SimApi) {
        // Final sample so short runs still record the series.
        self.last_sample = f64::NEG_INFINITY;
        self.sample(api);
    }

    fn export_metrics(&self, registry: &mut dtn_sim::metrics::MetricsRegistry) {
        registry.set_gauge(
            "settlement.watched_pairs",
            self.exchange_wheel.watched_pairs() as f64,
        );
        registry.set_gauge(
            "settlement.wheel_occupancy",
            self.exchange_wheel.bucket_occupancy() as f64,
        );
        registry.set_gauge("arena.interest_bytes", self.backend.state_bytes() as f64);
        registry.set_gauge(
            "arena.reputation_bytes",
            self.reputation
                .iter()
                .map(ReputationTable::state_bytes)
                .sum::<usize>() as f64,
        );
    }

    fn snapshot_state(&self) -> serde::Value {
        self.export_state().to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        let doc = DcimState::from_value(state)
            .map_err(|e| format!("protocol state does not parse as a DCIM document: {e}"))?;
        self.import_state(&doc)
    }

    fn check_invariants(&self, api: &SimApi) -> Vec<String> {
        let mut violations = Vec::new();

        // Token conservation: the economy is closed — every payment moves
        // tokens between nodes, so the ledger total must stay at the
        // endowment and no balance may go negative.
        if self.params.incentive_enabled {
            let endowment = self.backend.node_count() as f64 * self.params.incentive.initial_tokens;
            let total = self.ledger.total().amount();
            let tolerance = 1e-6 * endowment.max(1.0);
            if (total - endowment).abs() > tolerance {
                violations.push(format!(
                    "token conservation broken: ledger total {total} vs endowment {endowment}"
                ));
            }
            for node in api.node_ids() {
                let balance = self.ledger.balance(node).amount();
                if !balance.is_finite() || balance < -1e-9 {
                    violations.push(format!("{node}: invalid token balance {balance}"));
                }
            }
        }

        // Rating bounds: every opinion every observer holds must stay
        // finite and on the DRM's [0, max_rating] scale.
        let max_rating = self.params.rating.max_rating;
        for table in &self.reputation {
            let observer = table.owner();
            for subject in api.node_ids() {
                if subject == observer {
                    continue;
                }
                let rating = table.rating_of(subject);
                if !rating.is_finite() || !(0.0..=max_rating).contains(&rating) {
                    violations.push(format!(
                        "{observer}: rating of {subject} is {rating}, outside [0, {max_rating}]"
                    ));
                }
            }
        }

        // No double-pay: each settlement consumed exactly one first-
        // delivery claim, so redelivered copies (kernel retries racing a
        // successful copy) can never be paid twice for the same
        // (message, destination) pair.
        let claims = self.registry.len() as u64;
        if self.stats.settlements != claims {
            violations.push(format!(
                "double-pay guard broken: {} settlements vs {claims} first-delivery claims",
                self.stats.settlements
            ));
        }

        // Offer hygiene: a pending prepayment quote must correspond to a
        // transfer still in flight over a live contact — anything else
        // means an interrupted hand-off escaped cleanup and could be paid
        // for a copy that never (fully) arrived.
        let mut pending_keys: Vec<(NodeId, NodeId, MessageId)> =
            self.pending.keys().copied().collect();
        pending_keys.sort_unstable();
        for (from, to, id) in pending_keys {
            if !api.in_contact(from, to) {
                violations.push(format!(
                    "pending offer {from}->{to} for {id} outlived its contact"
                ));
            } else if !api.is_sending(from, to, id) {
                violations.push(format!(
                    "pending offer {from}->{to} for {id} has no transfer in flight"
                ));
            }
        }

        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::geometry::{Area, Point};
    use dtn_sim::kernel::{ScheduledMessage, SimulationBuilder};
    use dtn_sim::message::{Keyword, Quality};
    use dtn_sim::mobility::ScriptedWaypoints;

    fn router(n: usize) -> DcimRouter {
        DcimRouter::new(n, ProtocolParams::paper_default(), 42)
    }

    #[test]
    fn accessors_reflect_configuration() {
        let mut r = router(4);
        r.set_behavior(NodeId(1), NodeBehavior::Malicious);
        r.set_behavior(NodeId(2), NodeBehavior::paper_selfish());
        r.set_role(NodeId(3), Role::TOP);
        assert_eq!(r.behavior(NodeId(1)), NodeBehavior::Malicious);
        assert_eq!(r.malicious_nodes(), vec![NodeId(1)]);
        assert_eq!(r.honest_nodes(), vec![NodeId(0), NodeId(3)]);
        assert_eq!(r.params().incentive.initial_tokens, 200.0);
        assert_eq!(r.ledger().total().amount(), 800.0);
        assert!(r.stats() == ProtocolStats::default());
    }

    #[test]
    fn transfer_tokens_provisioning_conserves_total() {
        let mut r = router(3);
        r.transfer_tokens(NodeId(0), NodeId(2), Tokens::new(50.0))
            .expect("affordable");
        assert_eq!(r.ledger().balance(NodeId(0)).amount(), 150.0);
        assert_eq!(r.ledger().balance(NodeId(2)).amount(), 250.0);
        assert_eq!(r.ledger().total().amount(), 600.0);
        assert!(r
            .transfer_tokens(NodeId(0), NodeId(2), Tokens::new(1000.0))
            .is_err());
    }

    #[test]
    fn malicious_average_rating_starts_neutral() {
        let mut r = router(5);
        r.set_behavior(NodeId(4), NodeBehavior::Malicious);
        assert_eq!(r.malicious_average_rating(), 2.5);
    }

    #[test]
    #[should_panic(expected = "validate")]
    fn invalid_params_rejected_at_construction() {
        let mut p = ProtocolParams::paper_default();
        p.incentive.award_alpha = 0.0;
        let _ = DcimRouter::new(2, p, 1);
    }

    /// The relay-threshold prepayment path: a receiver whose mean tag
    /// weight exceeds 0.8 must prepay; direct interests grow toward 1.0
    /// during a long contact, crossing the threshold.
    #[test]
    fn relay_prepayment_fires_for_high_interest_relays() {
        let mut params = ProtocolParams::paper_default();
        params.enrichment_enabled = false;
        let mut r = DcimRouter::new(3, params, 9);
        // n1 subscribes the message keyword (weight starts 0.5, grows on
        // contact with n2 which shares it), but the *destination* n2 is
        // out of range of the source: n1 receives as a relay-destination
        // mix... keep it simple: n1 has TWO direct interests in both
        // message keywords → mean weight starts at 0.5 and grows via the
        // n1–n2 shared-interest contact above 0.8.
        r.subscribe(NodeId(1), [Keyword(1), Keyword(2)]);
        r.subscribe(NodeId(2), [Keyword(1), Keyword(2)]);
        let mut sim = SimulationBuilder::new(Area::new(1000.0, 1000.0), 9)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(90.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(180.0, 0.0))))
            .message(ScheduledMessage {
                at: dtn_sim::time::SimTime::from_secs(400.0),
                source: NodeId(0),
                size_bytes: 50_000,
                ttl_secs: 10_000.0,
                priority: Priority::High,
                quality: Quality::new(0.9),
                ground_truth: vec![Keyword(1), Keyword(2)],
                source_tags: vec![Keyword(1), Keyword(2)],
                expected_destinations: vec![NodeId(1), NodeId(2)],
            })
            .build(r);
        let _ = sim.run_until(dtn_sim::time::SimTime::from_secs(1200.0));
        let (r, _) = sim.finish();
        // n1 is a destination here (direct interest), so it pays a
        // settlement rather than a prepayment; the economic activity is
        // what we assert — tokens moved and every payment is bounded.
        assert!(r.stats().settlements >= 1);
        assert!(r.stats().tokens_awarded > 0.0);
        assert!((r.ledger().total().amount() - 600.0).abs() < 1e-9);
    }

    /// Settlement safety under redelivery: lossy chaos corrupts transfers,
    /// the recovery layer redelivers them, and the per-step invariant
    /// audit holds the economy to exactly one payment per delivered
    /// (message, destination) pair throughout.
    #[test]
    fn redelivery_under_loss_chaos_settles_at_most_once() {
        let mut params = ProtocolParams::paper_default();
        params.enrichment_enabled = false;
        let mut r = DcimRouter::new(2, params, 11);
        r.subscribe(NodeId(1), [Keyword(1)]);
        let messages = (0..10u64).map(|k| ScheduledMessage {
            at: dtn_sim::time::SimTime::from_secs(10.0 + k as f64 * 60.0),
            source: NodeId(0),
            size_bytes: 50_000,
            ttl_secs: 10_000.0,
            priority: Priority::High,
            quality: Quality::new(0.9),
            ground_truth: vec![Keyword(1)],
            source_tags: vec![Keyword(1)],
            expected_destinations: vec![NodeId(1)],
        });
        let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 11)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
            .messages(messages)
            .faults("loss=0.4".parse().unwrap())
            .recovery(dtn_sim::transfer::RecoveryPolicy {
                backoff_base_secs: 2.0,
                ..dtn_sim::transfer::RecoveryPolicy::default()
            })
            .check_invariants_every(1)
            .build(r);
        let summary = sim.run_until(dtn_sim::time::SimTime::from_secs(1200.0));
        let counters = *sim.api().counters();
        let (r, _) = sim.finish();
        assert!(
            counters.transfers_aborted_injected > 0,
            "loss chaos must corrupt some transfers"
        );
        assert!(counters.transfers_retried > 0, "corruption earns retries");
        assert!(summary.delivered_pairs >= 1, "redelivery gets some through");
        assert_eq!(
            r.stats().settlements,
            summary.delivered_pairs,
            "one settlement per delivered pair, never more"
        );
        assert!((r.ledger().total().amount() - 400.0).abs() < 1e-9);
    }

    /// The avoidance gate blocks a sender the receiver rates below the
    /// threshold, without any message exchange needed to probe it.
    #[test]
    fn avoidance_gate_counts_refusals() {
        let mut params = ProtocolParams::paper_default();
        params.rating_prob = 1.0;
        params.honest_enrich_prob = 0.0;
        let mut r = DcimRouter::new(2, params, 9);
        r.subscribe(NodeId(1), [Keyword(1)]);
        r.set_behavior(NodeId(0), NodeBehavior::Malicious);
        // The malicious *source* fabricates low-truth messages: source
        // tags outside the ground truth rate the source down at n1, and
        // once below 1.0 the gate refuses further receptions from it.
        let messages = (0..10u64).map(|k| ScheduledMessage {
            at: dtn_sim::time::SimTime::from_secs(10.0 + k as f64 * 60.0),
            source: NodeId(0),
            size_bytes: 10_000,
            ttl_secs: 10_000.0,
            priority: Priority::High,
            quality: Quality::new(0.1),
            ground_truth: vec![Keyword(9)], // truth disjoint from tags
            source_tags: vec![Keyword(1)],
            expected_destinations: vec![NodeId(1)],
        });
        let mut sim = SimulationBuilder::new(Area::new(500.0, 500.0), 9)
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(0.0, 0.0))))
            .node(Box::new(ScriptedWaypoints::pinned(Point::new(50.0, 0.0))))
            .messages(messages)
            .build(r);
        let summary = sim.run_until(dtn_sim::time::SimTime::from_secs(700.0));
        let (r, _) = sim.finish();
        assert!(
            r.stats().refused_distrusted_sender > 0,
            "the fabricating source got blocked"
        );
        assert!(
            summary.delivered_pairs < 10,
            "not all fabricated messages were accepted: {}",
            summary.delivered_pairs
        );
        assert!(r.reputation(NodeId(1)).rating_of(NodeId(0)) < 1.0);
    }
}
