//! Content enrichment (Paper I, §1.3.2 and operator function `Enrich`).
//!
//! Relays may add keyword annotations to in-transit messages. An honest
//! relay contributes *relevant* tags — keywords from the message's actual
//! content that the existing annotations miss (the soldier recognizing a
//! face the source could not name). A malicious relay adds *irrelevant*
//! tags drawn from the scenario keyword pool, hoping destinations with
//! matching interests will pay for them.
//!
//! Relevance is grounded in the simulation oracle
//! ([`dtn_sim::message::MessageBody::ground_truth`]): honest tags come from
//! inside the set, malicious tags from outside it.

use dtn_sim::message::{Keyword, MessageCopy};
use dtn_sim::rng::SimRng;
use dtn_sim::time::SimTime;
use dtn_sim::world::NodeId;

use crate::behavior::NodeBehavior;
use crate::params::ProtocolParams;

/// The outcome of one enrichment opportunity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EnrichmentResult {
    /// Tags added that are in the message's ground truth.
    pub relevant_added: Vec<Keyword>,
    /// Tags added that are *not* in the ground truth.
    pub irrelevant_added: Vec<Keyword>,
}

impl EnrichmentResult {
    /// Total tags added.
    #[must_use]
    pub fn added_count(&self) -> usize {
        self.relevant_added.len() + self.irrelevant_added.len()
    }
}

/// Lets `node` (with the given behavior) enrich a carried copy in place.
///
/// Honest and selfish nodes add at most one missing ground-truth tag with
/// probability [`ProtocolParams::honest_enrich_prob`] (a selfish node that
/// *is* participating in an encounter has no reason to skip the extra
/// income). Malicious nodes add
/// [`ProtocolParams::malicious_fake_tags`] keywords from outside the ground
/// truth. Returns what was added.
pub fn enrich_copy(
    copy: &mut MessageCopy,
    node: NodeId,
    behavior: NodeBehavior,
    params: &ProtocolParams,
    now: SimTime,
    rng: &mut SimRng,
) -> EnrichmentResult {
    let mut result = EnrichmentResult::default();
    if !params.enrichment_enabled {
        return result;
    }
    match behavior {
        NodeBehavior::Honest | NodeBehavior::Selfish { .. } => {
            if !rng.chance(params.honest_enrich_prob) {
                return result;
            }
            let present = copy.keywords();
            let missing: Vec<Keyword> = copy
                .body
                .ground_truth
                .iter()
                .copied()
                .filter(|k| !present.contains(k))
                .collect();
            if missing.is_empty() {
                return result;
            }
            let pick = missing[rng.index(missing.len())];
            if copy.enrich(pick, node, now) {
                result.relevant_added.push(pick);
            }
        }
        NodeBehavior::Malicious => {
            let pool = params.keyword_pool_size;
            let mut attempts = 0;
            while result.irrelevant_added.len() < params.malicious_fake_tags as usize
                && attempts < 8 * params.malicious_fake_tags
            {
                attempts += 1;
                let candidate = Keyword(rng.index(pool as usize) as u32);
                if copy.body.truth_contains(candidate) {
                    continue;
                }
                if copy.enrich(candidate, node, now) {
                    result.irrelevant_added.push(candidate);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::message::{MessageBody, MessageId, Priority, Quality};
    use std::sync::Arc;

    fn copy_with_truth(truth: Vec<Keyword>, tags: Vec<Keyword>) -> MessageCopy {
        let body = Arc::new(MessageBody {
            id: MessageId(1),
            source: NodeId(0),
            created_at: SimTime::ZERO,
            size_bytes: 1000,
            ttl_secs: 1000.0,
            priority: Priority::High,
            quality: Quality::new(0.9),
            ground_truth: truth,
        });
        MessageCopy::original(body, tags, SimTime::ZERO)
    }

    fn params() -> ProtocolParams {
        ProtocolParams::paper_default()
    }

    #[test]
    fn honest_enrichment_draws_from_ground_truth() {
        let mut p = params();
        p.honest_enrich_prob = 1.0;
        let mut rng = SimRng::new(1);
        let mut copy = copy_with_truth(vec![Keyword(1), Keyword(2), Keyword(3)], vec![Keyword(1)]);
        let r = enrich_copy(
            &mut copy,
            NodeId(5),
            NodeBehavior::Honest,
            &p,
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(r.relevant_added.len(), 1);
        assert!(r.irrelevant_added.is_empty());
        let added = r.relevant_added[0];
        assert!(copy.body.truth_contains(added));
        assert_ne!(added, Keyword(1), "already-present tag never re-added");
        assert_eq!(copy.tags_added_by(NodeId(5)), vec![added]);
    }

    #[test]
    fn honest_enrichment_noop_when_fully_tagged() {
        let mut p = params();
        p.honest_enrich_prob = 1.0;
        let mut rng = SimRng::new(2);
        let mut copy = copy_with_truth(vec![Keyword(1)], vec![Keyword(1)]);
        let r = enrich_copy(
            &mut copy,
            NodeId(5),
            NodeBehavior::Honest,
            &p,
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(r.added_count(), 0);
    }

    #[test]
    fn malicious_enrichment_avoids_ground_truth() {
        let p = params();
        let mut rng = SimRng::new(3);
        let mut copy = copy_with_truth(vec![Keyword(1), Keyword(2)], vec![Keyword(1)]);
        let r = enrich_copy(
            &mut copy,
            NodeId(9),
            NodeBehavior::Malicious,
            &p,
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(r.irrelevant_added.len(), 2);
        assert!(r.relevant_added.is_empty());
        for k in &r.irrelevant_added {
            assert!(
                !copy.body.truth_contains(*k),
                "malicious tag {k} must be false"
            );
        }
        assert_eq!(copy.tags_added_by(NodeId(9)).len(), 2);
    }

    #[test]
    fn enrichment_disabled_is_a_noop() {
        let mut p = params();
        p.enrichment_enabled = false;
        p.honest_enrich_prob = 1.0;
        let mut rng = SimRng::new(4);
        let mut copy = copy_with_truth(vec![Keyword(1), Keyword(2)], vec![Keyword(1)]);
        let honest = enrich_copy(
            &mut copy,
            NodeId(5),
            NodeBehavior::Honest,
            &p,
            SimTime::ZERO,
            &mut rng,
        );
        let malicious = enrich_copy(
            &mut copy,
            NodeId(6),
            NodeBehavior::Malicious,
            &p,
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(honest.added_count() + malicious.added_count(), 0);
        assert_eq!(copy.annotations.len(), 1);
    }

    #[test]
    fn zero_enrich_probability_never_adds() {
        let mut p = params();
        p.honest_enrich_prob = 0.0;
        let mut rng = SimRng::new(5);
        let mut copy = copy_with_truth(vec![Keyword(1), Keyword(2)], vec![Keyword(1)]);
        for _ in 0..20 {
            let r = enrich_copy(
                &mut copy,
                NodeId(5),
                NodeBehavior::Honest,
                &p,
                SimTime::ZERO,
                &mut rng,
            );
            assert_eq!(r.added_count(), 0);
        }
    }

    #[test]
    fn selfish_nodes_enrich_like_honest_ones() {
        let mut p = params();
        p.honest_enrich_prob = 1.0;
        let mut rng = SimRng::new(6);
        let mut copy = copy_with_truth(vec![Keyword(1), Keyword(2)], vec![Keyword(1)]);
        let r = enrich_copy(
            &mut copy,
            NodeId(5),
            NodeBehavior::paper_selfish(),
            &p,
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(r.relevant_added, vec![Keyword(2)]);
    }
}
