//! # dtn-core
//!
//! The paper's primary contribution, assembled: a data-centric message
//! dissemination protocol for delay tolerant networks that combines
//!
//! * **ChitChat routing** (transient social relationships, `S_v > S_u`
//!   forwarding) from [`dtn_routing`],
//! * a **credit-based incentive mechanism** (token promises from software
//!   and hardware factors, first-deliverer settlement, relay prepayments,
//!   zero-token starvation of selfish destinations) from [`dtn_incentive`],
//! * a **distributed reputation model** (confidence-weighted message
//!   ratings, gossiped device ratings, reputation-scaled awards) from
//!   [`dtn_reputation`], and
//! * **content enrichment** — in-transit annotation of messages, honest or
//!   malicious.
//!
//! The central type is [`protocol::DcimRouter`], a
//! [`dtn_sim::protocol::Protocol`] implementation that a
//! [`dtn_sim::kernel::SimulationBuilder`] drives. [`behavior::NodeBehavior`]
//! models the honest / selfish / malicious populations of the evaluation,
//! and [`ops`] maps the paper's eleven operator functions onto the public
//! API.
//!
//! ## Example
//!
//! ```
//! use dtn_core::prelude::*;
//! use dtn_sim::prelude::*;
//!
//! let mut router = DcimRouter::new(3, ProtocolParams::paper_default(), 42);
//! router.subscribe(NodeId(2), [Keyword(7)]);
//! router.set_behavior(NodeId(1), NodeBehavior::paper_selfish());
//! assert_eq!(router.ledger().balance(NodeId(0)).amount(), 200.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod behavior;
pub mod enrich;
pub mod judge;
pub mod ops;
pub mod params;
pub mod protocol;
pub mod strategy;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::behavior::NodeBehavior;
    pub use crate::enrich::{enrich_copy, EnrichmentResult};
    pub use crate::judge::{judge_message, PathJudgement};
    pub use crate::ops::{annotate, best_relay, device_type, messages_to_forward, DeviceType};
    pub use crate::params::ProtocolParams;
    pub use crate::protocol::{
        DcimRouter, ProtocolStats, BROKE_NODES_SERIES, MALICIOUS_RATING_SERIES,
    };
    pub use crate::strategy::{StrategyKind, StrategyMix};
    pub use dtn_incentive::params::Role;
}
