//! Strategic, economically rational adversary models (extension).
//!
//! [`crate::behavior::NodeBehavior`] covers the paper's populations —
//! duty-cycled selfish radios and tag-polluting malicious nodes. The
//! strategies here sit *on top* of that layer and game the economy
//! itself:
//!
//! * **Free-riders** accept custody (pocketing the cooperative look and
//!   any relay prepayment owed to them later), then silently drop the
//!   copy. The content DRM never sees them — a dropped message is never
//!   rated — so only the forwarding [`Watchdog`] can (thesis ref \[26\]).
//! * **Minority-game players** (Chahin et al., PAPERS.md) open the radio
//!   only when the *expected token yield per contact* beats a fixed
//!   energy cost, exploring first and then free-riding on participation
//!   whenever the market is saturated.
//! * **Tag-farmer rings** collude: members rate one another `max_rating`
//!   and everyone else `0`, poisoning gossip to steer reputation-scaled
//!   awards toward the ring. Countered by EigenTrust-style weighted
//!   absorption (SNIPPETS.md ADR-0008).
//! * **Whitewashers** behave maliciously, and when their reputation
//!   collapses they churn identity: every observer forgets them and they
//!   restart from the neutral prior (keeping their token balance — the
//!   economy is closed).
//!
//! [`Watchdog`]: dtn_reputation::watchdog::Watchdog

use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// One node's economic strategy. Nodes without a strategy play the
/// protocol straight (their [`crate::behavior::NodeBehavior`] still
/// applies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Accepts custody and silently drops relay copies, keeping tokens
    /// and saving the energy of forwarding.
    FreeRider,
    /// Opens the radio only when the expected token yield of a contact
    /// beats `energy_cost` (minority-game participation).
    MinorityGame {
        /// Token-denominated cost of keeping the radio open for one
        /// contact.
        energy_cost: f64,
    },
    /// Colludes with fellow ring members: rates them `max_rating` and
    /// outsiders `0`, and pollutes carried messages like a malicious
    /// node.
    TagFarmer {
        /// Collusion-ring identifier; members recognize one another.
        ring: u32,
    },
    /// Behaves maliciously and sheds the resulting bad identity by churn
    /// every `churn_interval_secs` once its average rating has sunk
    /// below neutral.
    Whitewasher {
        /// Seconds between identity-churn opportunities.
        churn_interval_secs: f64,
    },
}

impl StrategyKind {
    /// Validates the strategy's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            StrategyKind::FreeRider | StrategyKind::TagFarmer { .. } => Ok(()),
            StrategyKind::MinorityGame { energy_cost } => {
                if !energy_cost.is_finite() || energy_cost < 0.0 {
                    return Err(format!(
                        "minority-game energy_cost must be finite and non-negative, \
                         got {energy_cost}"
                    ));
                }
                Ok(())
            }
            StrategyKind::Whitewasher {
                churn_interval_secs,
            } => {
                if !churn_interval_secs.is_finite() || churn_interval_secs <= 0.0 {
                    return Err(format!(
                        "whitewasher churn_interval_secs must be finite and positive, \
                         got {churn_interval_secs}"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// A population-level strategy mix: what fraction of the nodes plays each
/// strategy, the strategies' shared parameters, and whether the
/// countermeasures (sequenced, reputation-weighted gossip plus
/// watchdog-gated custody) are armed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyMix {
    /// Fraction of nodes that free-ride (accept custody, silently drop).
    pub free_rider_fraction: f64,
    /// Fraction of nodes playing the minority-game participation
    /// strategy.
    pub minority_fraction: f64,
    /// Fraction of nodes in the colluding tag-farmer ring.
    pub farmer_fraction: f64,
    /// Fraction of nodes whitewashing via identity churn.
    pub whitewash_fraction: f64,
    /// Token-denominated per-contact energy cost for minority-game
    /// players.
    pub minority_energy_cost: f64,
    /// Seconds between whitewasher identity churns.
    pub churn_interval_secs: f64,
    /// Arms the countermeasures: digests are issued with monotonic
    /// sequence numbers and absorbed weighted by the observer's rating of
    /// the reporter, and senders refuse custody hand-offs to
    /// watchdog-suspicious forwarders.
    pub defense: bool,
}

impl Default for StrategyMix {
    fn default() -> Self {
        StrategyMix {
            free_rider_fraction: 0.0,
            minority_fraction: 0.0,
            farmer_fraction: 0.0,
            whitewash_fraction: 0.0,
            minority_energy_cost: 0.05,
            churn_interval_secs: 3600.0,
            defense: false,
        }
    }
}

impl StrategyMix {
    /// The combined fraction of strategy-playing (attacker) nodes.
    #[must_use]
    pub fn attacker_fraction(&self) -> f64 {
        self.free_rider_fraction
            + self.minority_fraction
            + self.farmer_fraction
            + self.whitewash_fraction
    }

    /// Whether the mix assigns no strategies at all (a defense-only or
    /// fully empty mix).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.attacker_fraction() == 0.0
    }

    /// How many of `nodes` play each strategy, in declaration order
    /// (free-riders, minority-game, farmers, whitewashers). Rounded per
    /// fraction and clamped so the total never exceeds `nodes`.
    #[must_use]
    pub fn counts(&self, nodes: usize) -> [usize; 4] {
        let mut remaining = nodes;
        let mut out = [0usize; 4];
        let fractions = [
            self.free_rider_fraction,
            self.minority_fraction,
            self.farmer_fraction,
            self.whitewash_fraction,
        ];
        for (slot, fraction) in out.iter_mut().zip(fractions) {
            let want = (fraction * nodes as f64).round() as usize;
            *slot = want.min(remaining);
            remaining -= *slot;
        }
        out
    }

    /// The concrete strategy for the attacker with population `rank`
    /// among `counts` (as returned by [`Self::counts`]); `None` past the
    /// attacker population.
    #[must_use]
    pub fn kind_for_rank(&self, rank: usize, counts: [usize; 4]) -> Option<StrategyKind> {
        let [free, minority, farm, white] = counts;
        if rank < free {
            Some(StrategyKind::FreeRider)
        } else if rank < free + minority {
            Some(StrategyKind::MinorityGame {
                energy_cost: self.minority_energy_cost,
            })
        } else if rank < free + minority + farm {
            Some(StrategyKind::TagFarmer { ring: 0 })
        } else if rank < free + minority + farm + white {
            Some(StrategyKind::Whitewasher {
                churn_interval_secs: self.churn_interval_secs,
            })
        } else {
            None
        }
    }

    /// Validates the mix: every fraction a probability, their sum at most
    /// one, and the shared strategy parameters in range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, fraction) in [
            ("free_rider_fraction", self.free_rider_fraction),
            ("minority_fraction", self.minority_fraction),
            ("farmer_fraction", self.farmer_fraction),
            ("whitewash_fraction", self.whitewash_fraction),
        ] {
            if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
                return Err(format!("{name} must lie in [0, 1], got {fraction}"));
            }
        }
        if self.attacker_fraction() > 1.0 + 1e-9 {
            return Err(format!(
                "strategy fractions sum to {:.3} > 1",
                self.attacker_fraction()
            ));
        }
        StrategyKind::MinorityGame {
            energy_cost: self.minority_energy_cost,
        }
        .validate()?;
        StrategyKind::Whitewasher {
            churn_interval_secs: self.churn_interval_secs,
        }
        .validate()?;
        Ok(())
    }
}

impl FromStr for StrategyMix {
    type Err = String;

    /// Parses a compact spec, mirroring the chaos fault-spec grammar:
    /// comma-separated `key=value` pairs plus the bare `defense` flag.
    ///
    /// ```text
    /// free=0.2,minority=0.1,farm=0.1,white=0.05,cost=0.05,churn=3600,defense
    /// ```
    fn from_str(s: &str) -> Result<Self, String> {
        let mut mix = StrategyMix::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (part, None),
            };
            let num = |v: Option<&str>| -> Result<f64, String> {
                v.ok_or_else(|| format!("{key} needs a value, e.g. {key}=0.2"))?
                    .parse::<f64>()
                    .map_err(|e| format!("bad {key}: {e}"))
            };
            match key {
                "free" => mix.free_rider_fraction = num(value)?,
                "minority" => mix.minority_fraction = num(value)?,
                "farm" => mix.farmer_fraction = num(value)?,
                "white" => mix.whitewash_fraction = num(value)?,
                "cost" => mix.minority_energy_cost = num(value)?,
                "churn" => mix.churn_interval_secs = num(value)?,
                "defense" => {
                    if value.is_some() {
                        return Err("defense takes no value".to_owned());
                    }
                    mix.defense = true;
                }
                other => {
                    return Err(format!(
                        "unknown strategy key {other}; use free=, minority=, farm=, \
                         white=, cost=, churn= and/or defense"
                    ))
                }
            }
        }
        mix.validate()?;
        Ok(mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_every_key() {
        let mix: StrategyMix =
            "free=0.2,minority=0.1,farm=0.1,white=0.05,cost=0.3,churn=900,defense"
                .parse()
                .expect("valid spec");
        assert_eq!(mix.free_rider_fraction, 0.2);
        assert_eq!(mix.minority_fraction, 0.1);
        assert_eq!(mix.farmer_fraction, 0.1);
        assert_eq!(mix.whitewash_fraction, 0.05);
        assert_eq!(mix.minority_energy_cost, 0.3);
        assert_eq!(mix.churn_interval_secs, 900.0);
        assert!(mix.defense);
        assert!((mix.attacker_fraction() - 0.45).abs() < 1e-12);
        assert!(!mix.is_empty());
    }

    #[test]
    fn spec_rejects_malformed_input() {
        assert!("frob=0.1".parse::<StrategyMix>().is_err());
        assert!("free".parse::<StrategyMix>().is_err());
        assert!("free=lots".parse::<StrategyMix>().is_err());
        assert!("defense=1".parse::<StrategyMix>().is_err());
        assert!("free=1.5".parse::<StrategyMix>().is_err());
        assert!(
            "free=0.6,farm=0.6".parse::<StrategyMix>().is_err(),
            "sum > 1"
        );
        assert!("free=0.1,cost=-1".parse::<StrategyMix>().is_err());
        assert!("free=0.1,churn=0".parse::<StrategyMix>().is_err());
        assert!("free=nan".parse::<StrategyMix>().is_err());
    }

    #[test]
    fn empty_spec_is_the_default_mix() {
        let mix: StrategyMix = "".parse().expect("empty spec");
        assert_eq!(mix, StrategyMix::default());
        assert!(mix.is_empty());
        assert!("defense".parse::<StrategyMix>().expect("flag only").defense);
    }

    #[test]
    fn counts_round_and_never_exceed_population() {
        let mix: StrategyMix = "free=0.2,minority=0.1,farm=0.1,white=0.05"
            .parse()
            .expect("valid");
        let counts = mix.counts(40);
        assert_eq!(counts, [8, 4, 4, 2]);
        // Rounding overflow is clamped: four fractions of 0.3 on 10 nodes
        // would round to 3 + 3 + 3 + 3 = 12 > 10.
        let heavy = StrategyMix {
            free_rider_fraction: 0.3,
            minority_fraction: 0.3,
            farmer_fraction: 0.3,
            whitewash_fraction: 0.1,
            ..StrategyMix::default()
        };
        let counts = heavy.counts(10);
        assert!(counts.iter().sum::<usize>() <= 10);
    }

    #[test]
    fn rank_assignment_covers_the_attacker_population_in_order() {
        let mix: StrategyMix = "free=0.2,minority=0.1,farm=0.1,white=0.05,cost=0.3,churn=900"
            .parse()
            .expect("valid");
        let counts = mix.counts(40);
        assert_eq!(mix.kind_for_rank(0, counts), Some(StrategyKind::FreeRider));
        assert_eq!(mix.kind_for_rank(7, counts), Some(StrategyKind::FreeRider));
        assert_eq!(
            mix.kind_for_rank(8, counts),
            Some(StrategyKind::MinorityGame { energy_cost: 0.3 })
        );
        assert_eq!(
            mix.kind_for_rank(12, counts),
            Some(StrategyKind::TagFarmer { ring: 0 })
        );
        assert_eq!(
            mix.kind_for_rank(16, counts),
            Some(StrategyKind::Whitewasher {
                churn_interval_secs: 900.0
            })
        );
        assert_eq!(mix.kind_for_rank(18, counts), None);
    }

    #[test]
    fn kind_validation_rejects_bad_parameters() {
        assert!(StrategyKind::FreeRider.validate().is_ok());
        assert!(StrategyKind::MinorityGame {
            energy_cost: f64::NAN
        }
        .validate()
        .is_err());
        assert!(StrategyKind::Whitewasher {
            churn_interval_secs: -5.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn mix_round_trips_through_serde() {
        let mix: StrategyMix = "free=0.2,white=0.1,defense".parse().expect("valid");
        let json = serde_json::to_string(&mix).expect("serializes");
        let back: StrategyMix = serde_json::from_str(&json).expect("parses");
        assert_eq!(mix, back);
    }
}
