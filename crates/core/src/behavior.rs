//! Node behavior models (Paper I, §1.3 and §5).
//!
//! * **Honest** nodes cooperate fully and enrich messages with *relevant*
//!   tags when they "know more" about the content.
//! * **Selfish** nodes keep their communication medium off most of the
//!   time: in the paper's experiments "a selfish node has its communication
//!   medium open one out of ten times when it encounters another node".
//! * **Malicious** nodes add irrelevant tags to carried messages (and their
//!   sources produce low-quality content) in pursuit of incentive tokens.

use serde::{Deserialize, Serialize};

use dtn_sim::rng::SimRng;

/// How a node behaves in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum NodeBehavior {
    /// A fully cooperative node.
    #[default]
    Honest,
    /// A node whose radio is on only with probability `duty_cycle` per
    /// encounter (the paper uses 0.1).
    Selfish {
        /// Probability that the medium is open for a given encounter.
        duty_cycle: f64,
    },
    /// A node that tags messages with irrelevant keywords to farm tokens.
    Malicious,
}

impl NodeBehavior {
    /// The paper's selfish node: medium open one encounter in ten.
    #[must_use]
    pub fn paper_selfish() -> Self {
        NodeBehavior::Selfish { duty_cycle: 0.1 }
    }

    /// Whether this node participates in a given encounter (selfish nodes
    /// draw their duty cycle; everyone else always participates).
    pub fn participates(&self, rng: &mut SimRng) -> bool {
        match *self {
            NodeBehavior::Selfish { duty_cycle } => rng.chance(duty_cycle),
            NodeBehavior::Honest | NodeBehavior::Malicious => true,
        }
    }

    /// Whether the node is selfish.
    #[must_use]
    pub fn is_selfish(&self) -> bool {
        matches!(self, NodeBehavior::Selfish { .. })
    }

    /// Whether the node is malicious.
    #[must_use]
    pub fn is_malicious(&self) -> bool {
        matches!(self, NodeBehavior::Malicious)
    }

    /// Validates the behavior's parameters: a selfish duty cycle must be a
    /// finite probability in `[0, 1]`. NaN or out-of-range values would
    /// silently skew [`Self::participates`] (the kernel's `chance` clamps
    /// nothing), so scenarios reject them at build time.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            NodeBehavior::Selfish { duty_cycle } => {
                if !duty_cycle.is_finite() || !(0.0..=1.0).contains(&duty_cycle) {
                    return Err(format!(
                        "selfish duty_cycle must be a probability in [0, 1], got {duty_cycle}"
                    ));
                }
                Ok(())
            }
            NodeBehavior::Honest | NodeBehavior::Malicious => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_and_malicious_always_participate() {
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert!(NodeBehavior::Honest.participates(&mut rng));
            assert!(NodeBehavior::Malicious.participates(&mut rng));
        }
    }

    #[test]
    fn selfish_duty_cycle_is_roughly_one_in_ten() {
        let mut rng = SimRng::new(2);
        let b = NodeBehavior::paper_selfish();
        let open = (0..10_000).filter(|_| b.participates(&mut rng)).count();
        assert!((800..1200).contains(&open), "got {open} open encounters");
    }

    #[test]
    fn classification_helpers() {
        assert!(NodeBehavior::paper_selfish().is_selfish());
        assert!(!NodeBehavior::paper_selfish().is_malicious());
        assert!(NodeBehavior::Malicious.is_malicious());
        assert!(!NodeBehavior::Honest.is_selfish());
        assert_eq!(NodeBehavior::default(), NodeBehavior::Honest);
    }

    #[test]
    fn validation_rejects_bad_duty_cycles() {
        assert_eq!(NodeBehavior::Honest.validate(), Ok(()));
        assert_eq!(NodeBehavior::Malicious.validate(), Ok(()));
        assert_eq!(NodeBehavior::paper_selfish().validate(), Ok(()));
        for bad in [f64::NAN, f64::INFINITY, -0.1, 1.1] {
            assert!(
                NodeBehavior::Selfish { duty_cycle: bad }
                    .validate()
                    .is_err(),
                "duty_cycle {bad} must be rejected"
            );
        }
        assert_eq!(NodeBehavior::Selfish { duty_cycle: 0.0 }.validate(), Ok(()));
        assert_eq!(NodeBehavior::Selfish { duty_cycle: 1.0 }.validate(), Ok(()));
    }

    #[test]
    fn extreme_duty_cycles() {
        let mut rng = SimRng::new(3);
        let never = NodeBehavior::Selfish { duty_cycle: 0.0 };
        let always = NodeBehavior::Selfish { duty_cycle: 1.0 };
        for _ in 0..50 {
            assert!(!never.participates(&mut rng));
            assert!(always.participates(&mut rng));
        }
    }
}
