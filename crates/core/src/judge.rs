//! The simulated human rater.
//!
//! The DRM "requires human judgement and input on each message content"
//! (Paper I, §1): a recipient looks at the picture and decides whether each
//! tag is truthful and how good the content is. The simulation stands a
//! noisy oracle in for the human: a tag is judged relevant iff it is in the
//! message's hidden ground truth, the per-node tag rating is the relevant
//! fraction scaled to the rating scale plus bounded noise, and the user's
//! stated confidence is drawn high but imperfect. This preserves the only
//! property the DRM needs — truthful tags rate high, fabricated tags rate
//! low, with realistic observation error (see DESIGN.md, substitutions).

use dtn_sim::message::MessageCopy;
use dtn_sim::rng::SimRng;
use dtn_sim::world::NodeId;

use dtn_reputation::rating::{MessageJudgement, RatingParams};

/// One judged node on a message's path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathJudgement {
    /// The node being judged.
    pub subject: NodeId,
    /// Whether the subject is the message source (rated for quality too)
    /// or an enriching relay (rated for its added tags only).
    pub is_source: bool,
    /// The rater's judgement inputs.
    pub judgement: MessageJudgement,
    /// How many of the subject's tags the rater found relevant (oracle
    /// ground truth, pre-noise). Informational for callers; the settlement
    /// path recomputes its own oracle count from the delivered copy, so
    /// payment does not depend on whether this reception was rated.
    pub relevant_tags: usize,
    /// How many tags the subject contributed in total.
    pub total_tags: usize,
}

/// Judges every annotating node on the path of `copy`, as `rater` would.
///
/// Returns one [`PathJudgement`] for the source and one per distinct relay
/// that added tags, in path order. Nodes that added nothing are not judged
/// (there is nothing to rate them on). The `rater` itself is skipped.
#[must_use]
pub fn judge_message(
    copy: &MessageCopy,
    rater: NodeId,
    params: &RatingParams,
    noise: f64,
    rng: &mut SimRng,
) -> Vec<PathJudgement> {
    let mut out = Vec::new();
    let source = copy.body.source;
    // Path order, deduplicated: source first, then relays by first hop.
    let mut subjects: Vec<NodeId> = Vec::new();
    for &node in &copy.path {
        if node != rater && !subjects.contains(&node) {
            subjects.push(node);
        }
    }
    // Annotators that are not on the recorded path (should not happen, but
    // annotations carry their own provenance) are judged after.
    for a in &copy.annotations {
        if a.annotator != rater && !subjects.contains(&a.annotator) {
            subjects.push(a.annotator);
        }
    }
    for subject in subjects {
        let tags = copy.tags_added_by(subject);
        if tags.is_empty() {
            continue;
        }
        let relevant = tags
            .iter()
            .filter(|&&k| copy.body.truth_contains(k))
            .count();
        let frac = relevant as f64 / tags.len() as f64;
        let jitter = |rng: &mut SimRng| {
            if noise > 0.0 {
                rng.uniform(-noise, noise)
            } else {
                0.0
            }
        };
        let tag_rating = (frac * params.max_rating + jitter(rng)).clamp(0.0, params.max_rating);
        let confidence = rng.uniform(0.6, 1.0).min(params.max_confidence).max(0.0);
        let quality_rating = (copy.body.quality.value() * params.max_rating + jitter(rng))
            .clamp(0.0, params.max_rating);
        out.push(PathJudgement {
            subject,
            is_source: subject == source,
            judgement: MessageJudgement {
                tag_rating,
                confidence,
                quality_rating,
            },
            relevant_tags: relevant,
            total_tags: tags.len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::message::{Keyword, MessageBody, MessageId, Priority, Quality};
    use dtn_sim::time::SimTime;
    use std::sync::Arc;

    fn copy(truth: Vec<Keyword>, source_tags: Vec<Keyword>, quality: f64) -> MessageCopy {
        let body = Arc::new(MessageBody {
            id: MessageId(1),
            source: NodeId(0),
            created_at: SimTime::ZERO,
            size_bytes: 1000,
            ttl_secs: 1000.0,
            priority: Priority::High,
            quality: Quality::new(quality),
            ground_truth: truth,
        });
        MessageCopy::original(body, source_tags, SimTime::ZERO)
    }

    fn params() -> RatingParams {
        RatingParams::paper_default()
    }

    #[test]
    fn truthful_source_rates_high_fabricator_rates_low() {
        let mut rng = SimRng::new(1);
        // Source 0 tags truthfully; relay 1 adds two fabricated tags.
        let mut c = copy(
            vec![Keyword(1), Keyword(2)],
            vec![Keyword(1), Keyword(2)],
            0.9,
        );
        let t = SimTime::from_secs(1.0);
        c = c.arrived_at(NodeId(1), t);
        c.enrich(Keyword(50), NodeId(1), t);
        c.enrich(Keyword(51), NodeId(1), t);
        let judged = judge_message(&c, NodeId(9), &params(), 0.0, &mut rng);
        assert_eq!(judged.len(), 2);
        let src = judged
            .iter()
            .find(|j| j.subject == NodeId(0))
            .expect("source judged");
        let relay = judged
            .iter()
            .find(|j| j.subject == NodeId(1))
            .expect("relay judged");
        assert!(src.is_source && !relay.is_source);
        assert_eq!(src.judgement.tag_rating, 5.0, "all source tags truthful");
        assert_eq!(src.relevant_tags, 2);
        assert_eq!(relay.judgement.tag_rating, 0.0, "all relay tags fabricated");
        assert_eq!(relay.relevant_tags, 0);
        assert_eq!(relay.total_tags, 2);
    }

    #[test]
    fn mixed_tags_rate_proportionally() {
        let mut rng = SimRng::new(2);
        let mut c = copy(vec![Keyword(1), Keyword(2)], vec![Keyword(1)], 0.5);
        let t = SimTime::from_secs(1.0);
        c = c.arrived_at(NodeId(1), t);
        c.enrich(Keyword(2), NodeId(1), t); // relevant
        c.enrich(Keyword(77), NodeId(1), t); // irrelevant
        let judged = judge_message(&c, NodeId(9), &params(), 0.0, &mut rng);
        let relay = judged
            .iter()
            .find(|j| j.subject == NodeId(1))
            .expect("judged");
        assert_eq!(relay.judgement.tag_rating, 2.5, "half the tags relevant");
        assert_eq!((relay.relevant_tags, relay.total_tags), (1, 2));
    }

    #[test]
    fn quality_rating_tracks_intrinsic_quality() {
        let mut rng = SimRng::new(3);
        let c_good = copy(vec![Keyword(1)], vec![Keyword(1)], 1.0);
        let c_poor = copy(vec![Keyword(1)], vec![Keyword(1)], 0.1);
        let good = judge_message(&c_good, NodeId(9), &params(), 0.0, &mut rng);
        let poor = judge_message(&c_poor, NodeId(9), &params(), 0.0, &mut rng);
        assert_eq!(good[0].judgement.quality_rating, 5.0);
        assert!((poor[0].judgement.quality_rating - 0.5).abs() < 1e-12);
    }

    #[test]
    fn noise_stays_within_bounds() {
        let mut rng = SimRng::new(4);
        let c = copy(vec![Keyword(1)], vec![Keyword(1)], 1.0);
        for _ in 0..200 {
            let j = &judge_message(&c, NodeId(9), &params(), 0.5, &mut rng)[0];
            assert!(j.judgement.tag_rating >= 4.5 - 1e-9);
            assert!(j.judgement.tag_rating <= 5.0 + 1e-9);
            assert!((0.6..=1.0).contains(&j.judgement.confidence));
        }
    }

    #[test]
    fn rater_does_not_judge_itself() {
        let mut rng = SimRng::new(5);
        let mut c = copy(vec![Keyword(1), Keyword(2)], vec![Keyword(1)], 0.5);
        let t = SimTime::from_secs(1.0);
        c = c.arrived_at(NodeId(9), t);
        c.enrich(Keyword(2), NodeId(9), t);
        let judged = judge_message(&c, NodeId(9), &params(), 0.0, &mut rng);
        assert!(judged.iter().all(|j| j.subject != NodeId(9)));
    }

    #[test]
    fn non_annotating_relays_not_judged() {
        let mut rng = SimRng::new(6);
        let mut c = copy(vec![Keyword(1)], vec![Keyword(1)], 0.5);
        c = c.arrived_at(NodeId(1), SimTime::from_secs(1.0)); // carried, added nothing
        c = c.arrived_at(NodeId(2), SimTime::from_secs(2.0));
        let judged = judge_message(&c, NodeId(2), &params(), 0.0, &mut rng);
        assert_eq!(judged.len(), 1, "only the source annotated");
        assert_eq!(judged[0].subject, NodeId(0));
    }
}
