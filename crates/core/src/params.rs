//! All tunables of the integrated protocol, with the paper's defaults and
//! the component toggles used by the ablation benches.

use serde::{Deserialize, Serialize};

use dtn_incentive::params::IncentiveParams;
use dtn_reputation::rating::RatingParams;
use dtn_routing::interests::ChitChatParams;

/// Configuration of the full data-centric incentive protocol.
///
/// The toggles exist for two reasons: the paper's *ChitChat baseline* is
/// exactly this protocol with `incentive_enabled = false` (so the selfish-
/// behavior model applies identically to both arms of every figure), and
/// the ablation bench switches individual components off to attribute the
/// mechanism's effects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolParams {
    /// The ChitChat RTSR constants.
    pub chitchat: ChitChatParams,
    /// The credit-mechanism constants.
    pub incentive: IncentiveParams,
    /// The DRM rating constants.
    pub rating: RatingParams,
    /// Master switch for the credit mechanism. Off → plain ChitChat
    /// (promises, payments and the zero-token reception bar all disabled).
    pub incentive_enabled: bool,
    /// Master switch for the distributed reputation model. Off → awards use
    /// the neutral rating and no gossip is exchanged.
    pub drm_enabled: bool,
    /// Master switch for content enrichment (honest *and* malicious
    /// annotation of in-transit messages).
    pub enrichment_enabled: bool,
    /// Whether the hardware (energy) factor contributes to promises.
    pub hardware_factor_enabled: bool,
    /// Size of the scenario's keyword pool (Table 5.1: 200). Malicious
    /// enrichers draw irrelevant tags from this pool.
    pub keyword_pool_size: u32,
    /// Probability that an honest relay enriches a carried message when it
    /// knows something the tags miss (per reception).
    pub honest_enrich_prob: f64,
    /// Irrelevant tags a malicious node adds per carried message.
    pub malicious_fake_tags: u32,
    /// Probability that a receiving user takes the time to rate a message
    /// (the DRM "requires human judgement"; not every reception is rated).
    pub rating_prob: f64,
    /// Nodes refuse any reception from a sender whose device rating has
    /// fallen below this value (on the 0–`max_rating` scale) — the DRM's
    /// "avoid receiving from malicious nodes" rule.
    pub avoid_rating_threshold: f64,
    /// Cadence of the Fig. 5.4 reputation sampling, seconds.
    pub sample_interval_secs: f64,
}

impl ProtocolParams {
    /// The paper's configuration: everything enabled, Table 5.1 constants.
    #[must_use]
    pub fn paper_default() -> Self {
        ProtocolParams {
            chitchat: ChitChatParams::paper_default(),
            incentive: IncentiveParams::paper_default(),
            rating: RatingParams::paper_default(),
            incentive_enabled: true,
            drm_enabled: true,
            enrichment_enabled: true,
            hardware_factor_enabled: true,
            keyword_pool_size: 200,
            // Enrichment is a deliberate human act ("the user can add this
            // name to the annotations"); per-reception it is rare. 0.02 per
            // hop still fully tags hot messages over their multi-hop life.
            honest_enrich_prob: 0.02,
            malicious_fake_tags: 2,
            rating_prob: 0.15,
            avoid_rating_threshold: 1.0,
            sample_interval_secs: 600.0,
        }
    }

    /// The ChitChat baseline: identical kinematics and behaviors, no
    /// credit, no DRM, no enrichment.
    #[must_use]
    pub fn chitchat_baseline() -> Self {
        ProtocolParams {
            incentive_enabled: false,
            drm_enabled: false,
            enrichment_enabled: false,
            ..Self::paper_default()
        }
    }

    /// Validates nested parameter invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.incentive.validate()?;
        self.rating.validate()?;
        if !(0.0..=1.0).contains(&self.honest_enrich_prob) {
            return Err("honest_enrich_prob must lie in [0, 1]".into());
        }
        if self.keyword_pool_size == 0 {
            return Err("keyword_pool_size must be positive".into());
        }
        if self.sample_interval_secs <= 0.0 {
            return Err("sample_interval_secs must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.rating_prob) {
            return Err("rating_prob must lie in [0, 1]".into());
        }
        if !(0.0..=self.rating.max_rating).contains(&self.avoid_rating_threshold) {
            return Err("avoid_rating_threshold must lie within the rating scale".into());
        }
        Ok(())
    }
}

impl Default for ProtocolParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        assert_eq!(ProtocolParams::paper_default().validate(), Ok(()));
    }

    #[test]
    fn chitchat_baseline_disables_mechanism() {
        let p = ProtocolParams::chitchat_baseline();
        assert!(!p.incentive_enabled);
        assert!(!p.drm_enabled);
        assert!(!p.enrichment_enabled);
        assert_eq!(p.chitchat, ChitChatParams::paper_default(), "same routing");
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn invalid_nested_params_propagate() {
        let mut p = ProtocolParams::paper_default();
        p.honest_enrich_prob = 1.5;
        assert!(p.validate().is_err());
        let mut p = ProtocolParams::paper_default();
        p.keyword_pool_size = 0;
        assert!(p.validate().is_err());
        let mut p = ProtocolParams::paper_default();
        p.incentive.award_alpha = 0.1;
        assert!(p.validate().is_err());
    }
}
