//! Disaster-response scenario — reputation under adversarial tagging.
//!
//! After an earthquake, field teams share photos of damage and survivors.
//! A handful of nodes are malicious: they tag passing photos with
//! fabricated keywords ("survivors here") to farm incentive tokens from
//! teams who pay for exactly that information. The distributed reputation
//! model identifies them from rated receptions and gossip, and the award
//! scaling starves them of the profit.
//!
//! ```text
//! cargo run --release -p dtn-examples --bin disaster_response
//! ```

use dtn_core::prelude::*;
use dtn_sim::prelude::*;
use dtn_workloads::prelude::*;

fn main() {
    // A reduced Table 5.1 world with 20% malicious taggers.
    let mut scenario = reduced_scenario();
    scenario.nodes = 60;
    scenario.area_km2 = 0.6;
    scenario.duration_secs = 5400.0;
    scenario.malicious_fraction = 0.2;
    scenario.protocol.rating_prob = 0.4;
    let scenario = scenario.named("disaster-response");

    let mut sim = build_simulation(&scenario, Arm::Incentive, 2024);
    let summary = sim.run_until(SimTime::from_secs(scenario.duration_secs));
    let (router, _) = sim.finish();

    println!(
        "disaster response: {} responders ({} malicious), {:.0} simulated minutes",
        scenario.nodes,
        router.malicious_nodes().len(),
        scenario.duration_secs / 60.0
    );
    println!("  delivery ratio            {:.3}", summary.delivery_ratio);
    println!(
        "  fabricated tags injected  {}",
        router.stats().irrelevant_tags_added
    );
    println!(
        "  honest enrichment tags    {}",
        router.stats().relevant_tags_added
    );

    // How the network sees the liars vs honest responders.
    let malicious = router.malicious_nodes();
    let honest = router.honest_nodes();
    println!(
        "  avg rating of malicious   {:.2}/5.0 (started at neutral 2.50)",
        router.malicious_average_rating()
    );
    let honest_avg = {
        let observers = &honest;
        let mut sum = 0.0;
        let mut n = 0u32;
        for &obs in observers {
            for &subj in observers {
                if obs != subj && router.reputation(obs).knows(subj) {
                    sum += router.reputation(obs).rating_of(subj);
                    n += 1;
                }
            }
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / f64::from(n)
        }
    };
    println!("  avg rating of honest      {honest_avg:.2}/5.0");

    // The economics of lying: fabricators should hold fewer tokens than
    // honest responders on average, because their awards are scaled down.
    let mean_balance = |set: &[NodeId]| {
        set.iter()
            .map(|&n| router.ledger().balance(n).amount())
            .sum::<f64>()
            / set.len().max(1) as f64
    };
    println!(
        "  mean tokens: malicious {:.1} vs honest {:.1} (endowment {})",
        mean_balance(&malicious),
        mean_balance(&honest),
        scenario.protocol.incentive.initial_tokens
    );
    println!(
        "  reputation series sampled {} times over the run",
        summary
            .series
            .get(MALICIOUS_RATING_SERIES)
            .map_or(0, Vec::len)
    );
}
