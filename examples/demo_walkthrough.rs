//! The ICDCS'17 demo walkthrough (Paper II, §5), reproduced as a
//! deterministic simulation.
//!
//! Three devices, 50 tokens each. A holds 40 messages B is interested in;
//! A–B are in range and B–C are in range, but A and C never overlap.
//!
//! 1. **Phase 1** — B receives messages from A, paying per reception,
//!    until its tokens are exhausted; A then refuses to serve it ("device
//!    B has zero reward to offer... did not receive anymore messages").
//! 2. **Phase 2** — A leaves; C arrives. B relays (and enriches) the
//!    messages it carries to C, earning awards from C.
//! 3. **Phase 3** — A returns; B, solvent again, receives more messages.
//!
//! ```text
//! cargo run --release -p dtn-examples --bin demo_walkthrough
//! ```

use dtn_core::prelude::*;
use dtn_examples::print_balances;
use dtn_sim::prelude::*;

const A: NodeId = NodeId(0);
const B: NodeId = NodeId(1);
const C: NodeId = NodeId(2);

fn main() {
    let mut params = ProtocolParams::paper_default();
    params.incentive.initial_tokens = 50.0; // the demo's endowment
    params.honest_enrich_prob = 0.5; // B visibly enriches what it relays
    let mut router = DcimRouter::new(3, params, 1);
    // "The interests of devices B and C are kept exactly the same."
    router.subscribe(B, [Keyword(1)]);
    router.subscribe(C, [Keyword(1)]);

    let far = Point::new(1500.0, 1500.0);
    // A: present in phases 1 and 3.
    let a_script = ScriptedWaypoints::new(vec![
        (0.0, Point::new(0.0, 0.0)),
        (1790.0, Point::new(0.0, 0.0)),
        (1800.0, far),
        (3590.0, far),
        (3600.0, Point::new(0.0, 0.0)),
        (5400.0, Point::new(0.0, 0.0)),
    ]);
    // B: pinned between the two.
    let b_script = ScriptedWaypoints::pinned(Point::new(90.0, 0.0));
    // C: arrives for phase 2 and stays.
    let c_script = ScriptedWaypoints::new(vec![
        (0.0, far),
        (1790.0, far),
        (1800.0, Point::new(180.0, 0.0)),
        (5400.0, Point::new(180.0, 0.0)),
    ]);

    // 40 messages of varying sizes, all interesting to B (and C).
    let messages = (0..40u64).map(|k| ScheduledMessage {
        at: SimTime::from_secs(10.0 + k as f64),
        source: A,
        size_bytes: 300_000 + (k % 5) * 200_000,
        ttl_secs: 100_000.0,
        priority: Priority::High,
        quality: Quality::new(0.7 + 0.3 * ((k % 4) as f64 / 3.0)),
        ground_truth: vec![Keyword(1), Keyword(2)],
        source_tags: vec![Keyword(1)],
        expected_destinations: vec![B, C],
    });

    let mut sim = SimulationBuilder::new(Area::new(2000.0, 2000.0), 99)
        .node(Box::new(a_script))
        .node(Box::new(b_script))
        .node(Box::new(c_script))
        .messages(messages)
        .build(router);

    let received_by = |sim: &Simulation<DcimRouter>, node: NodeId| sim.api().buffer(node).len();

    // Phase 1: A↔B only.
    let _ = sim.run_until(SimTime::from_secs(1800.0));
    println!(
        "Phase 1 (A↔B): B received {} of 40 messages",
        received_by(&sim, B)
    );
    print_balances(
        "after phase 1",
        ledger(&sim),
        &[("A", A), ("B", B), ("C", C)],
    );
    let b_after_1 = received_by(&sim, B);
    let b_balance_1 = ledger(&sim).balance(B).amount();
    assert!(
        b_after_1 < 40,
        "B must be cut off before receiving everything"
    );
    assert!(b_balance_1 < 1.0, "B exhausted its tokens: {b_balance_1}");

    // Phase 2: B↔C only.
    let _ = sim.run_until(SimTime::from_secs(3600.0));
    println!(
        "\nPhase 2 (B↔C): C received {} messages via B",
        received_by(&sim, C)
    );
    print_balances(
        "after phase 2",
        ledger(&sim),
        &[("A", A), ("B", B), ("C", C)],
    );
    let b_balance_2 = ledger(&sim).balance(B).amount();
    assert!(
        b_balance_2 > b_balance_1,
        "B earned tokens by delivering to C: {b_balance_1} → {b_balance_2}"
    );

    // Phase 3: A returns.
    let _ = sim.run_until(SimTime::from_secs(5400.0));
    let b_after_3 = received_by(&sim, B);
    println!("\nPhase 3 (A back): B now holds {} messages", b_after_3);
    print_balances(
        "after phase 3",
        ledger(&sim),
        &[("A", A), ("B", B), ("C", C)],
    );
    assert!(
        b_after_3 > b_after_1,
        "solvent again, B resumed receiving: {b_after_1} → {b_after_3}"
    );

    let (router, summary) = sim.finish();
    println!(
        "\nenrichment tags B/C added en route: {}",
        router.stats().relevant_tags_added
    );
    println!("total settlements: {}", router.stats().settlements);
    println!(
        "economy total: {} (closed, 3 × 50)",
        router.ledger().total()
    );
    println!("deliveries recorded: {}", summary.delivered_pairs);
    println!("\ndemo walkthrough reproduced the Paper II phenomenology ✔");
}

fn ledger(sim: &Simulation<DcimRouter>) -> &dtn_incentive::ledger::TokenLedger {
    sim.protocol().ledger()
}
