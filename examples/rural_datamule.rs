//! Rural connectivity — a data mule under battery constraints.
//!
//! Two villages lie outside each other's radio range; a bus (the "data
//! mule") shuttles between them on a fixed timetable, parsed from a
//! `t,x,y` mobility trace. Villagers move around their own village on a
//! street grid ([`ManhattanGrid`]); everyone runs on a finite battery.
//! The incentive mechanism runs as usual — the mule earns tokens ferrying
//! messages across the partition.
//!
//! ```text
//! cargo run --release -p dtn-examples --bin rural_datamule
//! ```

use dtn_core::prelude::*;
use dtn_examples::print_balances;
use dtn_sim::prelude::*;

fn main() {
    const MARKET_PRICES: Keyword = Keyword(1);
    const CLINIC_SCHEDULE: Keyword = Keyword(2);

    // World: village A around (200, 200), village B around (1800, 200);
    // range 100 m, so ~1.4 km of dead air separates them.
    let area = Area::new(2000.0, 400.0);
    let n_villagers = 8usize; // per village
    let mule = NodeId((2 * n_villagers) as u32);

    let mut params = ProtocolParams::paper_default();
    params.incentive.initial_tokens = 60.0;
    let mut router = DcimRouter::new(2 * n_villagers + 1, params, 77);
    // Village A wants clinic schedules (published in B); village B wants
    // market prices (published in A).
    for i in 0..n_villagers as u32 {
        router.subscribe(NodeId(i), [CLINIC_SCHEDULE]);
    }
    for i in n_villagers as u32..(2 * n_villagers) as u32 {
        router.subscribe(NodeId(i), [MARKET_PRICES]);
    }
    // The bus operator subscribes the mule to both bulletins so it picks
    // them up wherever it is. (A subscription-less mule would need to
    // *acquire* transient interest in each village's content, and ChitChat
    // transient weights decay to nothing over the 20-minute dead-air ride
    // — a nice illustration of why real data-mule deployments configure
    // the mule explicitly.)
    router.subscribe(mule, [MARKET_PRICES, CLINIC_SCHEDULE]);
    // ...and every villager chips 20 tokens into the bus fund, so the
    // mule can pay for the receptions it ferries (token totals conserved).
    for i in 0..(2 * n_villagers) as u32 {
        router
            .transfer_tokens(NodeId(i), mule, dtn_incentive::ledger::Tokens::new(20.0))
            .expect("villagers can afford the subsidy");
    }

    // The bus timetable: a CSV trace, one round trip per hour.
    let timetable = "\
# rural bus: village A <-> village B, 1 round trip/h
0,    200, 200
300,  200, 200
1500, 1800, 200
1800, 1800, 200
3000, 200, 200
3600, 200, 200
";
    let bus = ScriptedWaypoints::from_csv(timetable).expect("valid timetable");

    let mut builder = SimulationBuilder::new(area, 77).battery_joules(500.0);
    for v in 0..2 * n_villagers {
        let home_x = if v < n_villagers { 200.0 } else { 1800.0 };
        // Villagers wander their own village block grid.
        let script = ScriptedWaypoints::pinned(Point::new(
            home_x + (v % n_villagers) as f64 * 20.0 - 70.0,
            200.0 + ((v % 4) as f64) * 30.0 - 45.0,
        ));
        builder = builder.node(Box::new(script));
    }
    builder = builder.node(Box::new(bus));

    // Each village publishes fresh bulletins every 10 minutes.
    let messages = (0..12u64).flat_map(|k| {
        let t = 60.0 + k as f64 * 600.0;
        [
            ScheduledMessage {
                at: SimTime::from_secs(t),
                source: NodeId(0),
                size_bytes: 200_000,
                ttl_secs: 7200.0,
                priority: Priority::High,
                quality: Quality::new(0.9),
                ground_truth: vec![MARKET_PRICES],
                source_tags: vec![MARKET_PRICES],
                expected_destinations: (8..16).map(NodeId).collect(),
            },
            ScheduledMessage {
                at: SimTime::from_secs(t + 300.0),
                source: NodeId(8),
                size_bytes: 200_000,
                ttl_secs: 7200.0,
                priority: Priority::High,
                quality: Quality::new(0.9),
                ground_truth: vec![CLINIC_SCHEDULE],
                source_tags: vec![CLINIC_SCHEDULE],
                expected_destinations: (0..8).map(NodeId).collect(),
            },
        ]
    });
    let mut sim = builder.messages(messages).build(router);
    let summary = sim.run_until(SimTime::from_secs(2.0 * 3600.0));

    println!("rural data mule: 2 villages x {n_villagers} villagers + 1 bus, 2 simulated hours");
    println!("  bulletins published        {}", summary.created);
    println!("  cross-village deliveries   {}", summary.delivered_pairs);
    println!("  delivery ratio             {:.3}", summary.delivery_ratio);
    println!(
        "  mean latency               {:.0} s (bounded by the timetable)",
        summary.mean_latency_secs
    );
    println!("  transfers completed        {}", summary.relays_completed);
    println!(
        "  bus battery remaining      {:.1} J of 500",
        sim.api().battery_remaining(mule).unwrap_or(f64::NAN)
    );
    println!(
        "  dead radios                {}",
        sim.api().depleted_count()
    );
    assert!(
        summary.delivered_pairs > 0,
        "the mule must carry something across"
    );

    let (router, _) = sim.finish();
    print_balances(
        "token balances",
        router.ledger(),
        &[
            ("villager A0", NodeId(0)),
            ("villager B0", NodeId(8)),
            ("bus (mule)", mule),
        ],
    );
    println!(
        "\nthe mule earned {} settlements ferrying bulletins",
        router.stats().settlements
    );
}
