//! Battlefield scenario — the paper's motivating deployment.
//!
//! A sergeant (role 1) commands squads of soldiers (role 2) spread over a
//! field with intermittent connectivity. Reconnaissance photos are
//! annotated at the source and enriched en route as soldiers recognize
//! things the source could not ("much better situational awareness",
//! Paper I, §1). High-priority orders from the sergeant earn relays the
//! maximum promise even when the receiving soldier cannot deliver yet
//! (Algorithm 3's `P_v = 0` branch).
//!
//! ```text
//! cargo run --release -p dtn-examples --bin battlefield
//! ```

use dtn_core::prelude::*;
use dtn_examples::print_balances;
use dtn_sim::prelude::*;

fn main() {
    // Keyword glossary for this mission.
    const ENEMY_ARMOR: Keyword = Keyword(1);
    const BRIDGE: Keyword = Keyword(2);
    const MINEFIELD: Keyword = Keyword(3);
    const SUPPLY_ROUTE: Keyword = Keyword(4);

    let nodes = 30usize;
    let seed = 1701;
    let mut params = ProtocolParams::paper_default();
    params.honest_enrich_prob = 0.25; // trained observers annotate often
    params.rating_prob = 0.5;

    let mut router = DcimRouter::new(nodes, params, seed);
    // Node 0 is the sergeant; everyone else is a soldier (default role 2).
    router.set_role(NodeId(0), Role::TOP);
    // Intelligence cell (nodes 1..6) subscribes to enemy armor sightings;
    // engineers (6..12) to bridges and minefields; logistics (12..18) to
    // supply routes.
    for i in 1..6u32 {
        router.subscribe(NodeId(i), [ENEMY_ARMOR]);
    }
    for i in 6..12u32 {
        router.subscribe(NodeId(i), [BRIDGE, MINEFIELD]);
    }
    for i in 12..18u32 {
        router.subscribe(NodeId(i), [SUPPLY_ROUTE]);
    }

    // Recon photos: the source sees the armor but misses the minefield in
    // the same frame — en-route enrichment can fill it in.
    let recon = (0..6u64).map(|k| ScheduledMessage {
        at: SimTime::from_secs(120.0 + k as f64 * 180.0),
        source: NodeId(18 + (k % 6) as u32),
        size_bytes: 1_000_000,
        ttl_secs: 2400.0,
        priority: Priority::High,
        quality: Quality::new(0.95),
        ground_truth: vec![ENEMY_ARMOR, MINEFIELD, BRIDGE],
        source_tags: vec![ENEMY_ARMOR],
        expected_destinations: (1..6).map(NodeId).collect(),
    });
    // Routine supply updates at low priority.
    let supply = (0..6u64).map(|k| ScheduledMessage {
        at: SimTime::from_secs(200.0 + k as f64 * 180.0),
        source: NodeId(24 + (k % 6) as u32),
        size_bytes: 400_000,
        ttl_secs: 2400.0,
        priority: Priority::Low,
        quality: Quality::new(0.4),
        ground_truth: vec![SUPPLY_ROUTE],
        source_tags: vec![SUPPLY_ROUTE],
        expected_destinations: (12..18).map(NodeId).collect(),
    });

    let mut sim = SimulationBuilder::new(Area::new(800.0, 800.0), seed)
        .nodes(nodes, || Box::new(RandomWaypoint::new(1.0, 2.5, 30.0)))
        .messages(recon.chain(supply))
        .build(router);
    let summary = sim.run_until(SimTime::from_secs(2400.0));

    println!("battlefield: {} soldiers, 40 simulated minutes", nodes);
    println!(
        "  recon (high prio) delivery ratio  {:.3}",
        summary
            .delivery_ratio_by_priority
            .get(&1)
            .copied()
            .unwrap_or(0.0)
    );
    println!(
        "  supply (low prio) delivery ratio  {:.3}",
        summary
            .delivery_ratio_by_priority
            .get(&3)
            .copied()
            .unwrap_or(0.0)
    );
    println!(
        "  transfers completed               {}",
        summary.relays_completed
    );

    let (router, _) = sim.finish();
    let stats = router.stats();
    println!(
        "  situational tags added en route   {}",
        stats.relevant_tags_added
    );
    println!(
        "  bonus deliveries via enrichment   {}",
        summary.bonus_deliveries
    );
    print_balances(
        "token balances (sergeant & sample soldiers)",
        router.ledger(),
        &[
            ("sergeant", NodeId(0)),
            ("intel-1", NodeId(1)),
            ("engineer-6", NodeId(6)),
            ("logistics-12", NodeId(12)),
            ("recon-18", NodeId(18)),
        ],
    );
}
