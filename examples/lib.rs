//! Shared helpers for the runnable examples.
//!
//! Each example is a standalone binary:
//!
//! * `quickstart` — the smallest end-to-end use of the public API;
//! * `battlefield` — role hierarchy, high-priority orders, enrichment;
//! * `disaster_response` — malicious taggers vs the reputation model;
//! * `demo_walkthrough` — the ICDCS'17 demo's A–B–C token-starvation story.

#![warn(missing_docs)]

use dtn_incentive::ledger::TokenLedger;
use dtn_sim::world::NodeId;

/// Pretty-prints a token balance sheet.
pub fn print_balances(title: &str, ledger: &TokenLedger, names: &[(&str, NodeId)]) {
    println!("--- {title} ---");
    for (name, node) in names {
        println!("  {name:<12} {}", ledger.balance(*node));
    }
}
