//! Quickstart: the smallest end-to-end use of the library.
//!
//! Builds a 40-node pedestrian world, subscribes interests, schedules a
//! handful of annotated messages, runs the full incentive protocol for a
//! simulated half hour, and prints what happened.
//!
//! ```text
//! cargo run --release -p dtn-examples --bin quickstart
//! ```

use dtn_core::prelude::*;
use dtn_sim::prelude::*;

fn main() {
    let nodes = 40usize;
    let seed = 7;

    // 1. The protocol under its paper defaults, with a couple of
    //    subscriptions: nodes 0..10 care about "wildfire" (kw 1), nodes
    //    10..20 about "evacuation" (kw 2).
    let mut router = DcimRouter::new(nodes, ProtocolParams::paper_default(), seed);
    for i in 0..10u32 {
        router.subscribe(NodeId(i), [Keyword(1)]);
    }
    for i in 10..20u32 {
        router.subscribe(NodeId(i), [Keyword(2)]);
    }
    // One selfish and one malicious node, to see the mechanism react.
    router.set_behavior(NodeId(30), NodeBehavior::paper_selfish());
    router.set_behavior(NodeId(31), NodeBehavior::Malicious);
    router.subscribe(NodeId(31), [Keyword(1)]); // the liar participates

    // 2. A 600 m² field of pedestrians and five annotated photo messages.
    let messages = (0..5u64).map(|k| ScheduledMessage {
        at: SimTime::from_secs(60.0 + k as f64 * 120.0),
        source: NodeId((20 + k) as u32),
        size_bytes: 500_000,
        ttl_secs: 1500.0,
        priority: Priority::High,
        quality: Quality::new(0.9),
        ground_truth: vec![Keyword(1), Keyword(2), Keyword(3)],
        source_tags: vec![Keyword(if k % 2 == 0 { 1 } else { 2 })],
        expected_destinations: if k % 2 == 0 {
            (0..10).map(NodeId).collect()
        } else {
            (10..20).map(NodeId).collect()
        },
    });
    let mut sim = SimulationBuilder::new(Area::new(600.0, 600.0), seed)
        .nodes(nodes, || Box::new(RandomWaypoint::pedestrian()))
        .messages(messages)
        .build(router);

    // 3. Run for a simulated half hour.
    let summary = sim.run_until(SimTime::from_secs(1800.0));

    // 4. Inspect the outcome.
    println!("quickstart: {} nodes, 30 simulated minutes", nodes);
    println!("  messages created      {}", summary.created);
    println!("  expected (msg, dest)  {}", summary.expected_pairs);
    println!("  delivered pairs       {}", summary.delivered_pairs);
    println!("  delivery ratio        {:.3}", summary.delivery_ratio);
    println!("  bonus deliveries      {}", summary.bonus_deliveries);
    println!("  transfers completed   {}", summary.relays_completed);
    println!("  mean latency          {:.1}s", summary.mean_latency_secs);

    let (router, _) = sim.finish();
    let stats = router.stats();
    println!("  settlements           {}", stats.settlements);
    println!("  tokens awarded        {:.2}", stats.tokens_awarded);
    println!(
        "  enrichment tags       {} relevant, {} fake",
        stats.relevant_tags_added, stats.irrelevant_tags_added
    );
    println!(
        "  malicious node n31 rated {:.2}/5.0 by honest nodes",
        router.malicious_average_rating()
    );
    println!(
        "  economy total         {} (closed: {} nodes x 200)",
        router.ledger().total(),
        nodes
    );
}
