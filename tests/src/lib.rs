//! Shared fixtures for the cross-crate integration tests (see `tests/`).

#![warn(missing_docs)]

use dtn_workloads::prelude::*;

/// A fast scenario in the paper's economic regime: 24 nodes, 0.25 km²
/// (the Table 5.1 density), 30 simulated minutes, scarce tokens.
#[must_use]
pub fn fast_scenario() -> Scenario {
    let mut s = reduced_scenario();
    s.nodes = 24;
    s.area_km2 = 0.24;
    s.duration_secs = 1800.0;
    s.message_interval_secs = 20.0;
    s.message_ttl_secs = 1200.0;
    s.protocol.incentive.initial_tokens = 20.0;
    s.named("integration-fast")
}
