//! Kernel-mode conformance: the event-driven contact core against the
//! time-stepped sweep.
//!
//! The `kernel_mode` knob selects between two contact-detection cores
//! that must be *observably indistinguishable*: the predicted-crossing
//! event scheduler (the default) and the original per-step pair sweep it
//! replaced. These tests pit the two modes against each other at the
//! byte level — rendered trace, run summary, protocol state — across
//! seeds, thread counts, and a chaos + recovery + adversary-strategy
//! stack, then check that a snapshot taken on one core refuses to
//! restore into the other with a typed error rather than undefined
//! drift (the cores agree on *observable* state but not on derived
//! scheduler state, so a cross-mode resume is an identity mismatch).

use dtn_integration_tests::fast_scenario;
use dtn_sim::events::KernelMode;
use dtn_sim::snapshot::SnapshotError;
use dtn_sim::time::SimTime;
use dtn_workloads::prelude::*;
use dtn_workloads::runner::{build_simulation_opts, run_once_checked};

const TRACE_CAPACITY: usize = 200_000;
const SEEDS: [u64; 3] = [101, 202, 303];
const THREAD_COUNTS: [usize; 2] = [1, 8];

/// Runs `scenario` under one kernel mode, returning every observable
/// surface: the rendered kernel trace plus the run summary and protocol
/// stats serialized to JSON (byte-level comparison, not approximate).
fn observable_output(
    scenario: &Scenario,
    arm: Arm,
    seed: u64,
    threads: usize,
    mode: KernelMode,
) -> (String, String) {
    let mut s = scenario.clone();
    s.threads = Some(threads);
    s.kernel_mode = Some(mode);
    let (run, trace) = run_once_checked(&s, arm, seed, Some(TRACE_CAPACITY), Some(60));
    let summary = serde_json::to_string(&run.summary).expect("summary serializes");
    let protocol = format!("{:?}", run.protocol);
    (trace.expect("trace attached"), summary + &protocol)
}

/// Asserts both modes produce byte-identical traces and summaries over
/// the seed × thread matrix for one scenario configuration.
fn assert_modes_agree(scenario: &Scenario, arm: Arm, label: &str) {
    for seed in SEEDS {
        for threads in THREAD_COUNTS {
            let (swept_trace, swept_rest) =
                observable_output(scenario, arm, seed, threads, KernelMode::TimeStepped);
            let (event_trace, event_rest) =
                observable_output(scenario, arm, seed, threads, KernelMode::EventDriven);
            assert_eq!(
                event_trace, swept_trace,
                "{label}: trace diverged between modes at seed={seed}, threads={threads}"
            );
            assert_eq!(
                event_rest, swept_rest,
                "{label}: summary/stats diverged between modes at seed={seed}, threads={threads}"
            );
        }
    }
}

/// Clean-world equivalence: the event core and the time-stepped sweep
/// are byte-identical across three seeds and threads ∈ {1, 8}.
#[test]
fn modes_do_not_change_a_single_byte() {
    assert_modes_agree(&fast_scenario(), Arm::Incentive, "clean");
}

/// The equivalence must survive the full hostile stack: faults vetoing
/// links mid-transfer, the recovery layer retrying aborts, and strategic
/// adversaries (with countermeasures armed) steering the economy — every
/// layer that reads contact state reads it through the same engine.
#[test]
fn modes_agree_under_chaos_recovery_and_strategies() {
    let mut scenario = fast_scenario();
    scenario.chaos = Some(
        "crash=3,crashdown=60,wipe,cut=6,cutdown=30,loss=0.05,corrupt=0.02"
            .parse()
            .expect("valid spec"),
    );
    scenario.recovery = Some(dtn_sim::transfer::RecoveryPolicy::default());
    scenario.strategies = Some("free=0.2,white=0.1,defense".parse().expect("valid mix"));
    assert_modes_agree(&scenario, Arm::Incentive, "chaos+recovery+strategies");
}

/// A snapshot taken mid-run on one core must refuse to restore into a
/// world built on the other core: a typed [`SnapshotError::Mismatch`]
/// naming both modes, never a panic or a silent restore.
#[test]
fn cross_mode_resume_is_rejected() {
    let scenario = fast_scenario();
    for (taken_on, resumed_on) in [
        (KernelMode::EventDriven, KernelMode::TimeStepped),
        (KernelMode::TimeStepped, KernelMode::EventDriven),
    ] {
        let mut source = scenario.clone();
        source.kernel_mode = Some(taken_on);
        let mut sim = build_simulation_opts(&source, Arm::Incentive, 101, None, None, false);
        sim.run_until(SimTime::from_secs(600.0));
        let snap = sim.snapshot();
        assert_eq!(snap.kernel_mode, taken_on, "snapshot records its core");

        let mut target = scenario.clone();
        target.kernel_mode = Some(resumed_on);
        let mut other = build_simulation_opts(&target, Arm::Incentive, 101, None, None, false);
        match other.restore(&snap) {
            Err(SnapshotError::Mismatch { detail }) => {
                assert!(
                    detail.contains(&taken_on.to_string())
                        && detail.contains(&resumed_on.to_string()),
                    "mismatch detail should name both cores: {detail}"
                );
            }
            Err(other) => panic!("expected a kernel-mode Mismatch, got {other}"),
            Ok(()) => panic!("cross-mode restore ({taken_on} -> {resumed_on}) must be rejected"),
        }
    }
}

/// Same-mode restore of the same snapshot stays accepted — the rejection
/// above is about the mode, not the snapshot.
#[test]
fn same_mode_resume_still_works() {
    let mut scenario = fast_scenario();
    scenario.kernel_mode = Some(KernelMode::EventDriven);
    let mut sim = build_simulation_opts(&scenario, Arm::Incentive, 101, None, None, false);
    sim.run_until(SimTime::from_secs(600.0));
    let snap = sim.snapshot();
    let mut resumed = build_simulation_opts(&scenario, Arm::Incentive, 101, None, None, false);
    resumed
        .restore(&snap)
        .expect("same-mode restore is accepted");
}
