//! Golden-trace regression tests.
//!
//! A fully scripted two-node world (pinned waypoints, one scheduled
//! message, a minimal flooding protocol) renders its bounded [`TraceLog`]
//! to text; the exact sequence is pinned here as a golden string. Any
//! change to contact detection order, transfer timing, trace rendering —
//! or, in the chaotic variant, to the fault layer's RNG draw order —
//! shows up as a diff against these snapshots.

use dtn_sim::buffer::InsertOutcome;
use dtn_sim::geometry::{Area, Point};
use dtn_sim::kernel::{ScheduledMessage, SimApi, Simulation, SimulationBuilder};
use dtn_sim::message::{Keyword, MessageId, Priority, Quality};
use dtn_sim::mobility::ScriptedWaypoints;
use dtn_sim::protocol::{Protocol, Reception};
use dtn_sim::time::SimTime;
use dtn_sim::trace::TraceLog;
use dtn_sim::world::NodeId;

/// Minimal deterministic flooder: push anything the peer lacks, mark
/// arrivals at node 1 as delivered. No RNG, no internal state.
#[derive(Debug, Default)]
struct Flood;

impl Protocol for Flood {
    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        for (from, to) in [(a, b), (b, a)] {
            for id in api.buffer(from).ids_sorted() {
                if !api.buffer(to).contains(id) {
                    api.send(from, to, id);
                }
            }
        }
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
        if matches!(r.outcome, InsertOutcome::Stored { .. }) && r.transfer.to == NodeId(1) {
            api.mark_delivered(NodeId(1), r.transfer.message);
        }
    }
}

/// The scripted world: node 0 parked at (100, 100); node 1 walks in from
/// 300 m away, dwells in range, and walks back out. One 1 MB message
/// (4 s of airtime) is created before the contact.
fn scripted(chaos: Option<&str>) -> Simulation<Flood> {
    let mut builder = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
        .trace(TraceLog::bounded(256))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(
            100.0, 100.0,
        ))))
        .node(Box::new(ScriptedWaypoints::new(vec![
            (0.0, Point::new(400.0, 100.0)),
            (20.0, Point::new(400.0, 100.0)),
            (50.0, Point::new(150.0, 100.0)),
            (80.0, Point::new(150.0, 100.0)),
            (110.0, Point::new(400.0, 100.0)),
        ])))
        .message(ScheduledMessage {
            at: SimTime::from_secs(5.0),
            source: NodeId(0),
            size_bytes: 1_000_000,
            ttl_secs: 10_000.0,
            priority: Priority::High,
            quality: Quality::new(0.8),
            ground_truth: vec![Keyword(1)],
            source_tags: vec![Keyword(1)],
            expected_destinations: vec![NodeId(1)],
        });
    if let Some(spec) = chaos {
        builder = builder.faults(spec.parse().expect("valid spec"));
    }
    builder.check_invariants_every(10).build(Flood)
}

fn rendered(chaos: Option<&str>) -> String {
    let mut sim = scripted(chaos);
    let _ = sim.run_until(SimTime::from_secs(120.0));
    assert_eq!(sim.api().trace().dropped(), 0, "snapshot must be complete");
    sim.api().trace().render()
}

#[test]
fn clean_run_matches_the_golden_trace() {
    let golden = "\
00:00:05 created m0 @ n0
00:00:43 contact-up n0<->n1
00:00:46 transfer m0 n0->n1
00:00:46 delivered m0 -> n1
00:01:26 contact-down n0<->n1
";
    let actual = rendered(None);
    assert_eq!(rendered(None), actual, "stable across runs");
    assert_eq!(actual, golden, "actual:\n{actual}");
}

#[test]
fn chaotic_run_matches_the_golden_trace() {
    // A per-step link-cut probability of 1/6 flaps the contact while the
    // message is in flight: the snapshot pins the fault stream's draw
    // order alongside the kernel's event order.
    let spec = "cut=600,cutdown=10";
    let golden = "\
00:00:05 created m0 @ n0
00:00:43 contact-up n0<->n1
00:00:46 transfer m0 n0->n1
00:00:46 delivered m0 -> n1
00:00:48 link-cut n0<->n1
00:00:48 contact-down n0<->n1
00:00:58 contact-up n0<->n1
00:00:59 link-cut n0<->n1
00:00:59 contact-down n0<->n1
00:01:09 contact-up n0<->n1
00:01:10 link-cut n0<->n1
00:01:10 contact-down n0<->n1
00:01:20 contact-up n0<->n1
00:01:24 link-cut n0<->n1
00:01:24 contact-down n0<->n1
";
    let actual = rendered(Some(spec));
    assert_eq!(rendered(Some(spec)), actual, "stable across runs");
    assert_eq!(actual, golden, "actual:\n{actual}");
}

#[test]
fn history_of_extracts_the_message_slice() {
    let mut sim = scripted(None);
    let _ = sim.run_until(SimTime::from_secs(120.0));
    let history = sim.api().trace().history_of(MessageId(0));
    assert!(!history.is_empty());
    assert!(history
        .iter()
        .all(|e| !matches!(e.event, dtn_sim::trace::TraceEvent::ContactUp { .. })));
}
