//! Golden-trace regression tests.
//!
//! A fully scripted two-node world (pinned waypoints, one scheduled
//! message, a minimal flooding protocol) renders its bounded [`TraceLog`]
//! to text; the exact sequence is pinned here as a golden string. Any
//! change to contact detection order, transfer timing, trace rendering —
//! or, in the chaotic variant, to the fault layer's RNG draw order —
//! shows up as a diff against these snapshots.

use dtn_sim::buffer::InsertOutcome;
use dtn_sim::geometry::{Area, Point};
use dtn_sim::kernel::{ScheduledMessage, SimApi, Simulation, SimulationBuilder};
use dtn_sim::message::{Keyword, MessageId, Priority, Quality};
use dtn_sim::mobility::ScriptedWaypoints;
use dtn_sim::protocol::{Protocol, Reception};
use dtn_sim::time::SimTime;
use dtn_sim::trace::TraceLog;
use dtn_sim::world::NodeId;
use dtn_workloads::prelude::*;

/// Minimal deterministic flooder: push anything the peer lacks, mark
/// arrivals at node 1 as delivered. No RNG, no internal state.
#[derive(Debug, Default)]
struct Flood;

impl Protocol for Flood {
    fn on_contact_up(&mut self, api: &mut SimApi, a: NodeId, b: NodeId) {
        for (from, to) in [(a, b), (b, a)] {
            for id in api.buffer(from).ids_sorted() {
                if !api.buffer(to).contains(id) {
                    api.send(from, to, id);
                }
            }
        }
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi, r: &Reception<'_>) {
        if matches!(r.outcome, InsertOutcome::Stored { .. }) && r.transfer.to == NodeId(1) {
            api.mark_delivered(NodeId(1), r.transfer.message);
        }
    }
}

/// The scripted world: node 0 parked at (100, 100); node 1 walks in from
/// 300 m away, dwells in range, and walks back out. One 1 MB message
/// (4 s of airtime) is created before the contact.
fn scripted(chaos: Option<&str>) -> Simulation<Flood> {
    let mut builder = SimulationBuilder::new(Area::new(1000.0, 1000.0), 7)
        .trace(TraceLog::bounded(256))
        .node(Box::new(ScriptedWaypoints::pinned(Point::new(
            100.0, 100.0,
        ))))
        .node(Box::new(ScriptedWaypoints::new(vec![
            (0.0, Point::new(400.0, 100.0)),
            (20.0, Point::new(400.0, 100.0)),
            (50.0, Point::new(150.0, 100.0)),
            (80.0, Point::new(150.0, 100.0)),
            (110.0, Point::new(400.0, 100.0)),
        ])))
        .message(ScheduledMessage {
            at: SimTime::from_secs(5.0),
            source: NodeId(0),
            size_bytes: 1_000_000,
            ttl_secs: 10_000.0,
            priority: Priority::High,
            quality: Quality::new(0.8),
            ground_truth: vec![Keyword(1)],
            source_tags: vec![Keyword(1)],
            expected_destinations: vec![NodeId(1)],
        });
    if let Some(spec) = chaos {
        builder = builder.faults(spec.parse().expect("valid spec"));
    }
    builder.check_invariants_every(10).build(Flood)
}

fn rendered(chaos: Option<&str>) -> String {
    let mut sim = scripted(chaos);
    let _ = sim.run_until(SimTime::from_secs(120.0));
    assert_eq!(sim.api().trace().dropped(), 0, "snapshot must be complete");
    sim.api().trace().render()
}

#[test]
fn clean_run_matches_the_golden_trace() {
    let golden = "\
00:00:05 created m0 @ n0
00:00:43 contact-up n0<->n1
00:00:46 transfer m0 n0->n1
00:00:46 delivered m0 -> n1
00:01:26 contact-down n0<->n1
";
    let actual = rendered(None);
    assert_eq!(rendered(None), actual, "stable across runs");
    assert_eq!(actual, golden, "actual:\n{actual}");
}

#[test]
fn chaotic_run_matches_the_golden_trace() {
    // A per-step link-cut probability of 1/6 flaps the contact while the
    // message is in flight: the snapshot pins the fault stream's draw
    // order alongside the kernel's event order.
    let spec = "cut=600,cutdown=10";
    let golden = "\
00:00:05 created m0 @ n0
00:00:43 contact-up n0<->n1
00:00:46 transfer m0 n0->n1
00:00:46 delivered m0 -> n1
00:00:48 link-cut n0<->n1
00:00:48 contact-down n0<->n1
00:00:58 contact-up n0<->n1
00:00:59 link-cut n0<->n1
00:00:59 contact-down n0<->n1
00:01:09 contact-up n0<->n1
00:01:10 link-cut n0<->n1
00:01:10 contact-down n0<->n1
00:01:20 contact-up n0<->n1
00:01:24 link-cut n0<->n1
00:01:24 contact-down n0<->n1
";
    let actual = rendered(Some(spec));
    assert_eq!(rendered(Some(spec)), actual, "stable across runs");
    assert_eq!(actual, golden, "actual:\n{actual}");
}

#[test]
fn history_of_extracts_the_message_slice() {
    let mut sim = scripted(None);
    let _ = sim.run_until(SimTime::from_secs(120.0));
    let history = sim.api().trace().history_of(MessageId(0));
    assert!(!history.is_empty());
    assert!(history
        .iter()
        .all(|e| !matches!(e.event, dtn_sim::trace::TraceEvent::ContactUp { .. })));
}

// ---------------------------------------------------------------------------
// Paper-arm golden equivalence.
//
// The two arms the paper evaluates (Incentive, ChitChat) are pinned as a
// fixture captured *before* the RouterBackend refactor: trace hash, full
// RunSummary, and the mechanism counters, across three seeds, clean and
// under chaos. Any refactor of the protocol hot path must reproduce these
// runs byte-for-byte, at any thread count. Re-bless deliberately with
//
//     DTN_BLESS=1 cargo test -p dtn-integration-tests --test golden_trace
// ---------------------------------------------------------------------------

const PAPER_GOLDEN_SEEDS: [u64; 3] = [101, 202, 303];
const PAPER_GOLDEN_CHAOS: &str = "cut=120,cutdown=15,loss=0.05";

/// A small world in the paper's economic regime, cheap enough to run
/// twelve times in a debug-mode test.
fn paper_golden_scenario(chaos: Option<&str>) -> Scenario {
    let mut s = reduced_scenario();
    s.nodes = 14;
    s.area_km2 = 0.14;
    s.duration_secs = 600.0;
    s.message_interval_secs = 30.0;
    s.message_ttl_secs = 450.0;
    s.selfish_fraction = 0.2;
    s.protocol.incentive.initial_tokens = 20.0;
    if let Some(spec) = chaos {
        s.chaos = Some(spec.parse().expect("valid chaos spec"));
    }
    let label = if chaos.is_some() { "chaos" } else { "clean" };
    s.named(format!("golden-paper-{label}"))
}

/// 128-bit FNV-1a, hex-rendered: a content fingerprint for trace text too
/// large to embed in the fixture.
fn fnv128_hex(text: &str) -> String {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for byte in text.as_bytes() {
        hash ^= u128::from(*byte);
        hash = hash.wrapping_mul(PRIME);
    }
    format!("{hash:032x}")
}

/// A [`serde_json::Value`] carried verbatim through the vendored serde
/// facade (which has no blanket `Serialize`/`Deserialize` for `Value`).
struct RawValue(serde_json::Value);

impl serde::Serialize for RawValue {
    fn to_value(&self) -> serde_json::Value {
        self.0.clone()
    }
}

impl serde::Deserialize for RawValue {
    fn from_value(v: &serde_json::Value) -> Result<Self, serde::Error> {
        Ok(RawValue(v.clone()))
    }
}

/// One golden record: everything the refactor must preserve about a run.
fn capture(scenario: &Scenario, arm: Arm, seed: u64) -> serde_json::Value {
    use serde::Serialize as _;
    let (run, trace) = dtn_workloads::runner::run_once_traced(scenario, arm, seed, Some(1_000_000));
    let trace = trace.expect("trace requested");
    serde_json::Value::Map(vec![
        (
            "trace_fnv128".to_string(),
            serde_json::Value::Str(fnv128_hex(&trace)),
        ),
        ("summary".to_string(), run.summary.to_value()),
        (
            "settlements".to_string(),
            run.protocol.settlements.to_value(),
        ),
        (
            "tokens_awarded".to_string(),
            run.protocol.tokens_awarded.to_value(),
        ),
        ("broke_nodes".to_string(), run.broke_nodes.to_value()),
    ])
}

fn golden_key(arm: Arm, chaos: Option<&str>, seed: u64) -> String {
    let regime = if chaos.is_some() { "chaos" } else { "clean" };
    format!("{}/{regime}/{seed}", arm.label())
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("goldens/paper_arms.json")
}

fn load_goldens() -> serde_json::Value {
    let text = std::fs::read_to_string(golden_path())
        .expect("pinned fixture tests/goldens/paper_arms.json (bless with DTN_BLESS=1)");
    let raw: RawValue = serde_json::from_str(&text).expect("fixture parses");
    raw.0
}

#[test]
fn paper_arms_match_the_pre_refactor_goldens() {
    let mut actual: Vec<(String, serde_json::Value)> = Vec::new();
    for chaos in [None, Some(PAPER_GOLDEN_CHAOS)] {
        let scenario = paper_golden_scenario(chaos);
        for arm in Arm::BOTH {
            for seed in PAPER_GOLDEN_SEEDS {
                actual.push((golden_key(arm, chaos, seed), capture(&scenario, arm, seed)));
            }
        }
    }
    if std::env::var_os("DTN_BLESS").is_some() {
        let path = golden_path();
        std::fs::create_dir_all(path.parent().expect("goldens dir")).expect("mkdir");
        let text = serde_json::to_string_pretty(&RawValue(serde_json::Value::Map(actual)))
            .expect("fixture serializes");
        std::fs::write(&path, text).expect("fixture written");
        return;
    }
    let golden = load_goldens();
    let entries = golden.as_map().expect("fixture is an object");
    assert_eq!(
        actual.len(),
        entries.len(),
        "fixture covers exactly the captured grid"
    );
    for (key, value) in &actual {
        assert_eq!(
            Some(value),
            golden.get(key),
            "{key} diverged from the pre-refactor golden"
        );
    }
}

/// The kernel's determinism contract extends the fixture across thread
/// counts: a sharded run must still reproduce the single-threaded golden.
#[test]
fn paper_arm_goldens_hold_at_thread_count_two() {
    if std::env::var_os("DTN_BLESS").is_some() {
        return; // fixture being regenerated by the capture test
    }
    let golden = load_goldens();
    for arm in Arm::BOTH {
        let mut scenario = paper_golden_scenario(Some(PAPER_GOLDEN_CHAOS));
        scenario.threads = Some(2);
        let actual = capture(&scenario, arm, PAPER_GOLDEN_SEEDS[0]);
        let key = golden_key(arm, Some(PAPER_GOLDEN_CHAOS), PAPER_GOLDEN_SEEDS[0]);
        assert_eq!(
            Some(&actual),
            golden.get(&key),
            "{key} diverged at threads=2"
        );
    }
}
