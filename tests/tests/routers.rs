//! Cross-router conformance suite for the (backend × overlay) grid.
//!
//! The `RouterBackend` seam lets the incentive overlay wrap any routing
//! substrate. This suite is the proof that the generalisation changed
//! nothing and broke nothing:
//!
//! * every grid cell survives a chaos run with the invariant audit on and
//!   reports a finite delivery ratio in `[0, 1]`;
//! * the ChitChat-backend cells reproduce the paper's two `Arm` runs
//!   byte-for-byte (the golden suite pins the arms themselves);
//! * the grid enumeration is compile-time exhaustive — a new router
//!   variant fails the build until the grid grows with it;
//! * a proptest sweep over contact interleavings (random cut/loss regimes,
//!   random backend, random overlay) keeps the audit green everywhere.

use dtn_integration_tests::fast_scenario;
use dtn_sim::faults::FaultPlan;
use dtn_workloads::prelude::*;
use dtn_workloads::runner::{run_backend_checked, run_once_checked};
use proptest::prelude::*;

/// Audit cadence: every 15 simulated steps (same as the chaos suite).
const AUDIT_EVERY: u64 = 15;

/// A grid-sized world: Table 5.1 density, 16 nodes, 15 simulated minutes —
/// small enough that the full 12-cell grid stays in test-suite budget,
/// large enough that every backend actually relays.
fn grid_scenario() -> Scenario {
    let mut s = fast_scenario();
    s.nodes = 16;
    s.area_km2 = 0.16;
    s.duration_secs = 900.0;
    s.message_ttl_secs = 700.0;
    s.named("router-grid")
}

#[test]
fn every_grid_cell_survives_chaos_with_the_audit_on() {
    let mut s = grid_scenario();
    s.chaos = Some("cut=10,cutdown=20,loss=0.05".parse().expect("valid spec"));
    for &backend in BackendKind::ALL.iter() {
        for &overlay in Overlay::BOTH.iter() {
            let run = run_backend_checked(&s, backend, overlay, 42, Some(AUDIT_EVERY));
            let ratio = run.summary.delivery_ratio;
            assert!(
                ratio.is_finite() && (0.0..=1.0).contains(&ratio),
                "{}+{}: delivery ratio {ratio} out of range",
                backend.tag(),
                overlay.tag()
            );
            assert!(
                run.summary.created > 10,
                "{}+{}: workload still generated",
                backend.tag(),
                overlay.tag()
            );
        }
    }
}

#[test]
fn chitchat_backend_reproduces_the_paper_arms_byte_for_byte() {
    // The grid's ChitChat rows ARE the paper's two arms: same world, same
    // RNG draws, same books. The golden suite pins the arms against the
    // pre-refactor fixture; this test pins the backend path against the
    // arm path, closing the loop.
    let s = grid_scenario();
    for &overlay in Overlay::BOTH.iter() {
        let via_backend =
            run_backend_checked(&s, BackendKind::ChitChat, overlay, 7, Some(AUDIT_EVERY));
        let via_arm = run_once_checked(&s, arm_for(overlay), 7, None, Some(AUDIT_EVERY)).0;
        assert_eq!(
            via_backend.summary,
            via_arm.summary,
            "kernel stats diverge on overlay {}",
            overlay.tag()
        );
        assert_eq!(
            via_backend.protocol,
            via_arm.protocol,
            "mechanism stats diverge on overlay {}",
            overlay.tag()
        );
        assert_eq!(via_backend.broke_nodes, via_arm.broke_nodes);
    }
}

#[test]
fn grid_cells_replay_byte_for_byte() {
    // The determinism contract extends to every backend, not only the
    // arms: identical (scenario, backend, overlay, seed) reproduces the
    // identical run, chaos included.
    let mut s = grid_scenario();
    s.chaos = Some("cut=6,cutdown=30,loss=0.1".parse().expect("valid spec"));
    for (backend, overlay) in [
        (BackendKind::Prophet, Overlay::On),
        (BackendKind::SprayAndWait(8), Overlay::Off),
    ] {
        let a = run_backend_checked(&s, backend, overlay, 101, Some(AUDIT_EVERY));
        let b = run_backend_checked(&s, backend, overlay, 101, Some(AUDIT_EVERY));
        assert_eq!(a.summary, b.summary, "{}: kernel replay", backend.tag());
        assert_eq!(
            a.protocol,
            b.protocol,
            "{}: mechanism replay",
            backend.tag()
        );
    }
}

#[test]
fn relay_volumes_order_sanely_across_backends() {
    // Coarse cross-router sanity on identical workloads: flooding relays
    // strictly more than source-only delivery, and the two-hop cap sits
    // in between (inclusive — small worlds can saturate it).
    let s = grid_scenario();
    let relays = |kind| {
        run_backend_checked(&s, kind, Overlay::Off, 5, None)
            .summary
            .relays_completed
    };
    let epidemic = relays(BackendKind::Epidemic);
    let direct = relays(BackendKind::DirectDelivery);
    let twohop = relays(BackendKind::TwoHop);
    assert!(
        epidemic > direct,
        "epidemic ({epidemic}) must out-relay direct delivery ({direct})"
    );
    assert!(
        twohop >= direct,
        "two-hop ({twohop}) cannot relay less than direct ({direct})"
    );
    assert!(
        epidemic >= twohop,
        "epidemic ({epidemic}) floods at least as much as two-hop ({twohop})"
    );
}

/// Compile-time exhaustiveness: adding a `BackendKind` variant makes this
/// match a build error until the grid (and this suite) grows with it.
fn classify(kind: BackendKind) -> &'static str {
    match kind {
        BackendKind::ChitChat => "chitchat",
        BackendKind::Epidemic => "epidemic",
        BackendKind::DirectDelivery => "direct",
        BackendKind::SprayAndWait(_) => "spray",
        BackendKind::TwoHop => "twohop",
        BackendKind::Prophet => "prophet",
    }
}

#[test]
fn the_grid_enumerates_every_backend_exactly_once() {
    for (i, kind) in BackendKind::ALL.iter().enumerate() {
        assert_eq!(kind.index(), i, "ALL and index() stay in lock step");
        assert!(!classify(*kind).is_empty());
        assert_eq!(
            BackendKind::parse(&kind.tag()).expect("tags round-trip"),
            *kind
        );
    }
    let tags: std::collections::HashSet<String> =
        BackendKind::ALL.iter().map(|k| k.tag()).collect();
    assert_eq!(tags.len(), BackendKind::ALL.len(), "tags are distinct");
}

/// The randomized sweeps' world: sub-second per run.
fn tiny_scenario() -> Scenario {
    let mut s = fast_scenario();
    s.nodes = 14;
    s.area_km2 = 0.14;
    s.duration_secs = 600.0;
    s.message_ttl_secs = 450.0;
    s.named("router-tiny")
}

/// A contact-interleaving regime: random link-cut churn plus random
/// in-flight payload loss — the fault classes that reorder and repeat the
/// contact/transfer sequence every backend hook chain runs on.
fn arb_interleaving() -> impl Strategy<Value = FaultPlan> {
    (0.0f64..24.0, 1.0f64..90.0, 0.0f64..0.35).prop_map(|(cut, cutdown, loss)| FaultPlan {
        crash_per_hour: 0.0,
        crash_down_secs: 60.0,
        crash_wipes_buffer: false,
        link_cut_per_hour: cut,
        link_cut_secs: cutdown,
        battery_spike_per_hour: 0.0,
        battery_spike_joules: 1.0,
        transfer_loss_prob: loss,
        transfer_corrupt_prob: 0.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (backend, overlay) cell under any contact interleaving keeps
    /// the invariant audit green and the delivery ratio in bounds. The
    /// audit runs every step, so a breach anywhere in the hook chain
    /// (escrow tickets, predictability tables, settlement books) panics
    /// with the seed and plan.
    #[test]
    fn random_interleavings_never_breach_any_grid_cell(
        backend_idx in 0usize..BackendKind::ALL.len(),
        overlay_on in prop::bool::ANY,
        seed in 0u64..10_000,
        plan in arb_interleaving()
    ) {
        let mut s = tiny_scenario();
        plan.validate().expect("generated plans are valid");
        s.chaos = Some(plan);
        let backend = BackendKind::ALL[backend_idx];
        let overlay = if overlay_on { Overlay::On } else { Overlay::Off };
        let run = run_backend_checked(&s, backend, overlay, seed, Some(1));
        let ratio = run.summary.delivery_ratio;
        prop_assert!(
            ratio.is_finite() && (0.0..=1.0).contains(&ratio),
            "{}+{}: ratio {} out of range",
            backend.tag(),
            overlay.tag(),
            ratio
        );
    }
}
