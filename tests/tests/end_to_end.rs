//! Cross-crate end-to-end tests: the full stack (workload synthesis →
//! simulation → protocol → statistics) exercised at small scale.

use dtn_integration_tests::fast_scenario;
use dtn_workloads::prelude::*;

#[test]
fn both_arms_run_to_completion_and_deliver() {
    let s = fast_scenario();
    for arm in Arm::BOTH {
        let run = run_once(&s, arm, 42);
        assert!(run.summary.created > 10, "{arm:?}: workload generated");
        assert!(
            run.summary.delivery_ratio > 0.0,
            "{arm:?}: something delivered"
        );
        assert!(run.summary.delivery_ratio <= 1.0);
        assert!(run.summary.relays_completed > 0);
    }
}

#[test]
fn incentive_arm_moves_tokens_chitchat_arm_does_not() {
    let s = fast_scenario();
    let inc = run_once(&s, Arm::Incentive, 42);
    let cc = run_once(&s, Arm::ChitChat, 42);
    assert!(inc.protocol.settlements > 0);
    assert!(inc.protocol.tokens_awarded > 0.0);
    assert_eq!(cc.protocol.settlements, 0);
    assert_eq!(cc.protocol.tokens_awarded, 0.0);
    assert_eq!(
        cc.protocol.relevant_tags_added, 0,
        "no enrichment in baseline"
    );
}

#[test]
fn identical_workload_across_arms() {
    // The paired-comparison guarantee: same seed → same created messages
    // and the same expected destination sets in both arms.
    let s = fast_scenario();
    let inc = run_once(&s, Arm::Incentive, 7);
    let cc = run_once(&s, Arm::ChitChat, 7);
    assert_eq!(inc.summary.created, cc.summary.created);
    assert_eq!(inc.summary.expected_pairs, cc.summary.expected_pairs);
}

#[test]
fn selfish_nodes_depress_delivery_in_both_arms() {
    let mut low = fast_scenario();
    low.selfish_fraction = 0.0;
    let mut high = fast_scenario();
    high.selfish_fraction = 0.8;
    for arm in Arm::BOTH {
        let lo = run_seeds(&low, arm, &[1, 2]);
        let hi = run_seeds(&high, arm, &[1, 2]);
        assert!(
            hi.delivery_ratio < lo.delivery_ratio,
            "{arm:?}: 80% selfish must hurt MDR ({} vs {})",
            hi.delivery_ratio,
            lo.delivery_ratio
        );
    }
}

#[test]
fn incentive_mdr_stays_close_to_chitchat() {
    // Paper I, §5.A: the mechanism's MDR is "almost the same as ChitChat"
    // — starvation costs some delivery, priority-aware forwarding wins
    // some back. At this micro scale the net sign flips with the seed, so
    // the robust claim is closeness; the reduced-scale fig5_1 sweep (see
    // EXPERIMENTS.md) exhibits the paper's slightly-below ordering.
    let mut s = fast_scenario();
    s.selfish_fraction = 0.4;
    s.protocol.enrichment_enabled = false; // isolate the economic effect
    let cmp = compare_arms(&s, &[1, 2, 3]);
    assert!(cmp.incentive.delivery_ratio > 0.0);
    assert!(
        cmp.mdr_gap().abs() < 0.15,
        "MDRs stay close: incentive {} vs chitchat {}",
        cmp.incentive.delivery_ratio,
        cmp.chitchat.delivery_ratio
    );
}

#[test]
fn malicious_population_is_recognized_end_to_end() {
    let mut s = fast_scenario();
    s.malicious_fraction = 0.25;
    s.protocol.rating_prob = 0.5;
    let mut sim = build_simulation(&s, Arm::Incentive, 5);
    let _ = sim.run_until(dtn_sim::time::SimTime::from_secs(s.duration_secs));
    let (router, _) = sim.finish();
    let avg = router.malicious_average_rating();
    let neutral = router.params().rating.neutral_rating;
    assert!(
        avg < neutral,
        "malicious nodes recognized: avg rating {avg} < neutral {neutral}"
    );
}

#[test]
fn deterministic_end_to_end() {
    let s = fast_scenario();
    let a = run_once(&s, Arm::Incentive, 99);
    let b = run_once(&s, Arm::Incentive, 99);
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.protocol, b.protocol);
    assert_eq!(a.broke_nodes, b.broke_nodes);
}

#[test]
fn buffer_pressure_is_survivable() {
    // Tiny buffers force constant evictions; the run must stay consistent
    // (no panics, bookkeeping intact) even when most copies are dropped.
    let mut s = fast_scenario();
    s.buffer_bytes = 3_000_000; // three 1 MB messages
    s.message_interval_secs = 10.0;
    let run = run_once(&s, Arm::Incentive, 3);
    assert!(
        run.summary.buffer_evictions > 0,
        "evictions actually happened"
    );
    assert!(run.summary.delivery_ratio <= 1.0);
}

#[test]
fn short_ttl_expires_messages() {
    let mut s = fast_scenario();
    s.message_ttl_secs = 120.0;
    let run = run_once(&s, Arm::Incentive, 3);
    assert!(run.summary.ttl_expiries > 0, "TTL sweep engaged");
}

#[test]
fn zero_token_economy_blocks_all_interested_reception() {
    let mut s = fast_scenario();
    s.protocol.incentive.initial_tokens = 0.0;
    let run = run_once(&s, Arm::Incentive, 3);
    assert_eq!(
        run.summary.delivered_pairs, 0,
        "no destination can ever afford a reception"
    );
    assert!(run.protocol.refused_broke_destination > 0);
}
