//! Cross-crate checks for the observability layer: profiling must never
//! perturb simulation results, and the emitted `PerfReport` JSON must
//! round-trip with the fields downstream tooling depends on.

use dtn_integration_tests::fast_scenario;
use dtn_workloads::runner::{
    compare_arms, compare_arms_perf, run_once_perf, run_seeds, run_seeds_perf, PerfReport,
};
use dtn_workloads::scenario::Arm;

/// The golden non-perturbation guarantee at workload level: a profiled
/// multi-seed aggregate equals the unprofiled one exactly, field for
/// field, on both arms.
#[test]
fn profiled_comparison_is_byte_identical_to_unprofiled() {
    let scenario = fast_scenario();
    let seeds = [101, 202];
    let plain = compare_arms(&scenario, &seeds);
    let (profiled, perf) = compare_arms_perf(&scenario, &seeds);
    assert_eq!(
        serde_json::to_string(&plain.incentive).expect("json"),
        serde_json::to_string(&profiled.incentive).expect("json"),
        "profiling changed the incentive arm"
    );
    assert_eq!(
        serde_json::to_string(&plain.chitchat).expect("json"),
        serde_json::to_string(&profiled.chitchat).expect("json"),
        "profiling changed the chitchat arm"
    );
    assert_eq!(perf.runs, 4, "two arms x two seeds");
    assert!(perf.events_per_sec > 0.0);
}

/// `PerfReport` JSON round-trips and carries per-phase wall-clock totals
/// in kernel execution order plus the headline rates.
#[test]
fn perf_report_json_round_trips() {
    let scenario = fast_scenario();
    let (_, report) = run_once_perf(&scenario, Arm::Incentive, 101);
    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let back: PerfReport = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.runs, 1);
    assert_eq!(back.steps, report.steps);
    assert!(back.wall_secs > 0.0);
    assert!(back.sim_secs_per_sec > 0.0);
    assert!(back.events_per_sec > 0.0);
    let labels: Vec<&str> = back.phases.iter().map(|p| p.phase.as_str()).collect();
    assert_eq!(labels.first(), Some(&"mobility"));
    assert!(labels.contains(&"settlement_tick"));
    assert!(back.phases.iter().map(|p| p.secs).sum::<f64>() > 0.0);
    assert!(back.metrics.counter("kernel.steps") > 0);
}

/// The sequential perf path and the bounded-parallel plain path agree on
/// the aggregate summary: parallelism is an implementation detail, not a
/// statistical one.
#[test]
fn perf_aggregate_matches_parallel_aggregate() {
    let scenario = fast_scenario();
    let seeds = [101, 202, 303];
    let parallel = run_seeds(&scenario, Arm::Incentive, &seeds);
    let (sequential, report) = run_seeds_perf(&scenario, Arm::Incentive, &seeds);
    assert_eq!(
        serde_json::to_string(&parallel).expect("json"),
        serde_json::to_string(&sequential).expect("json"),
        "parallel and sequential seed runs diverged"
    );
    assert_eq!(report.runs, 3);
}
