//! Sweep-executor suite: worker-count invariance, disk-cache round-trips,
//! and corruption detection.
//!
//! The executor's contract is that its output is a pure function of the
//! plan — not of the worker count, not of completion order, and not of
//! whether a result came from a simulation, the in-process memo, or a
//! persisted disk entry. Every test here drives the real executor through
//! `dtn_workloads::sweep` and asserts bit-identical results across those
//! axes.
//!
//! The executor's configuration (worker count, cache directory, memo,
//! metrics) is process-global, so the tests in this file serialize on one
//! lock and always restore the default configuration before releasing it.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use dtn_workloads::prelude::*;
use dtn_workloads::sweep;
use proptest::prelude::*;

/// Serializes access to the executor's process-global configuration.
static EXECUTOR_LOCK: Mutex<()> = Mutex::new(());

/// Takes the lock and resets the executor to a known state: default
/// worker count, no disk cache, empty memo, and remembers the metrics
/// baseline so tests can assert on deltas.
fn executor_guard() -> MutexGuard<'static, ()> {
    let guard = EXECUTOR_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    sweep::set_workers(0);
    sweep::set_cache_dir(None);
    sweep::clear_memo();
    guard
}

/// A per-test scratch directory for disk-cache entries, created fresh.
fn scratch_cache(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtn-sweep-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Small but non-trivial world: enough traffic that summaries differ
/// across seeds and arms, small enough for a debug-mode test matrix.
fn tiny(selfish: f64) -> Scenario {
    let mut s = reduced_scenario();
    s.nodes = 12;
    s.area_km2 = 0.12;
    s.duration_secs = 600.0;
    s.message_interval_secs = 30.0;
    s.message_ttl_secs = 450.0;
    s.selfish_fraction = selfish;
    s.named(format!("sweep-it-{selfish}"))
}

fn small_plan() -> Vec<Cell> {
    let mut cells = Vec::new();
    for selfish in [0.0, 0.4] {
        for arm in Arm::BOTH {
            for seed in [1u64, 2] {
                cells.push(Cell::arm(tiny(selfish), arm, seed));
            }
        }
    }
    cells
}

/// Bit-level comparison via the serialized form — the same bytes the
/// disk cache persists, so equality here is equality everywhere.
fn as_bytes(results: &[CellResult]) -> String {
    serde_json::to_string(results).expect("results serialize")
}

#[test]
fn output_is_worker_count_invariant() {
    let _guard = executor_guard();
    let plan = small_plan();
    let lone = as_bytes(&sweep::run_cells(&plan));
    for workers in [2usize, 4, 8] {
        sweep::clear_memo();
        sweep::set_workers(workers);
        let pooled = as_bytes(&sweep::run_cells(&plan));
        assert_eq!(lone, pooled, "{workers} workers changed the output");
    }
    sweep::set_workers(0);
}

#[test]
fn warm_memo_serves_without_running() {
    let _guard = executor_guard();
    let plan = small_plan();
    let before = sweep::metrics();
    let cold = as_bytes(&sweep::run_cells(&plan));
    let warm = as_bytes(&sweep::run_cells(&plan));
    let after = sweep::metrics();
    assert_eq!(cold, warm);
    assert_eq!(after.cells_run - before.cells_run, plan.len() as u64);
    assert!(after.cache_hits - before.cache_hits >= plan.len() as u64);
}

#[test]
fn corrupted_and_truncated_disk_entries_are_rerun() {
    let _guard = executor_guard();
    let dir = scratch_cache("corrupt");
    sweep::set_cache_dir(Some(dir.clone()));
    let plan = vec![Cell::arm(tiny(0.2), Arm::Incentive, 7)];
    let pristine = as_bytes(&sweep::run_cells(&plan));
    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("cache dir listable")
        .map(|e| e.expect("entry").path())
        .collect();
    assert_eq!(entries.len(), 1, "one cell, one entry");

    // Payload tampering: valid JSON shape, wrong bytes under the hash.
    let original = std::fs::read_to_string(&entries[0]).expect("entry readable");
    let tampered = original.replace("delivery_ratio", "delivery_ratiX");
    assert_ne!(original, tampered, "the entry names the field it stores");
    for (label, content) in [
        ("tampered", tampered.as_str()),
        ("truncated", &original[..original.len() / 2]),
        ("garbage", "not json at all"),
    ] {
        std::fs::write(&entries[0], content).expect("tamper");
        sweep::clear_memo();
        let before = sweep::metrics();
        let rerun = as_bytes(&sweep::run_cells(&plan));
        let after = sweep::metrics();
        assert_eq!(pristine, rerun, "{label}: re-run reproduced the result");
        assert_eq!(
            after.disk_rejected - before.disk_rejected,
            1,
            "{label}: rejection counted"
        );
        assert_eq!(
            after.cells_run - before.cells_run,
            1,
            "{label}: cell re-ran instead of trusting the bad entry"
        );
    }

    // After the last re-run rewrote the entry, a cold process-equivalent
    // (cleared memo) must hit disk and run nothing.
    sweep::clear_memo();
    let before = sweep::metrics();
    let warm = as_bytes(&sweep::run_cells(&plan));
    let after = sweep::metrics();
    assert_eq!(pristine, warm);
    assert_eq!(after.disk_hits - before.disk_hits, 1);
    assert_eq!(after.cells_run - before.cells_run, 0);
    sweep::set_cache_dir(None);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Warm-cache soundness over the condition space: for any (selfish
    /// fraction, arm, seed) cell, running cold with the disk cache on and
    /// then re-running with a cleared memo (disk only) yields bit-identical
    /// results without executing a single simulation.
    #[test]
    fn warm_disk_sweep_matches_cold_sweep(
        selfish_decile in 0u8..=10,
        arm_pick in prop::bool::ANY,
        seed in 1u64..50,
    ) {
        let _guard = executor_guard();
        let dir = scratch_cache("proptest");
        sweep::set_cache_dir(Some(dir.clone()));
        let arm = if arm_pick { Arm::Incentive } else { Arm::ChitChat };
        let plan = vec![Cell::arm(tiny(f64::from(selfish_decile) / 10.0), arm, seed)];

        let cold = as_bytes(&sweep::run_cells(&plan));
        sweep::clear_memo();
        let before = sweep::metrics();
        let warm = as_bytes(&sweep::run_cells(&plan));
        let after = sweep::metrics();

        prop_assert_eq!(cold, warm);
        prop_assert_eq!(after.cells_run - before.cells_run, 0);
        prop_assert_eq!(after.disk_hits - before.disk_hits, 1);
        sweep::set_cache_dir(None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
