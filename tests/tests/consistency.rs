//! Cross-implementation consistency checks.
//!
//! The workspace contains two independent implementations of ChitChat
//! routing: the standalone [`dtn_routing::chitchat::ChitChatRouter`] and
//! the baseline arm of [`dtn_core::protocol::DcimRouter`] (the mechanism
//! with everything toggled off). On the same workload their outcomes must
//! agree closely — a strong regression tripwire for both.

use dtn_routing::chitchat::ChitChatRouter;
use dtn_sim::stats::RunSummary;
use dtn_sim::time::SimTime;
use dtn_sim::world::NodeId;
use dtn_workloads::prelude::*;

fn scenario() -> Scenario {
    let mut s = reduced_scenario();
    s.nodes = 30;
    s.area_km2 = 0.3;
    s.duration_secs = 2400.0;
    s.message_interval_secs = 30.0;
    s.message_ttl_secs = 1800.0;
    s.named("consistency")
}

fn run_standalone_chitchat(s: &Scenario, seed: u64) -> RunSummary {
    let mut sim = dtn_workloads::runner::build_with_protocol(s, seed, |pop, _| {
        let mut router = ChitChatRouter::new(pop.interests.len(), s.protocol.chitchat);
        for i in 0..pop.interests.len() {
            let node = NodeId(i as u32);
            router.subscribe(node, pop.sorted_interests(node));
        }
        router
    });
    sim.run_until(SimTime::from_secs(s.duration_secs))
}

#[test]
fn standalone_chitchat_matches_the_baseline_arm() {
    let s = scenario();
    let seed = 11;
    let standalone = run_standalone_chitchat(&s, seed);
    let arm = run_once(&s, Arm::ChitChat, seed).summary;

    // Identical workloads by construction.
    assert_eq!(standalone.created, arm.created);
    assert_eq!(standalone.expected_pairs, arm.expected_pairs);

    // The two implementations share the algorithms but differ in offer
    // ordering (the arm sorts ids the same way with the mechanism off, but
    // evaluates through a different code path), so allow small slack.
    let mdr_gap = (standalone.delivery_ratio - arm.delivery_ratio).abs();
    assert!(
        mdr_gap < 0.05,
        "MDR agreement: standalone {} vs arm {}",
        standalone.delivery_ratio,
        arm.delivery_ratio
    );
    let traffic_ratio = standalone.relays_completed as f64 / arm.relays_completed.max(1) as f64;
    assert!(
        (0.8..1.25).contains(&traffic_ratio),
        "traffic agreement: standalone {} vs arm {}",
        standalone.relays_completed,
        arm.relays_completed
    );
}

#[test]
fn baseline_arm_with_no_adversaries_equals_plain_population() {
    // With zero selfish/malicious fractions the behavior models are all
    // honest — the ChitChat arm must be unaffected by behavior machinery.
    let s = scenario();
    let a = run_once(&s, Arm::ChitChat, 5).summary;
    let mut s2 = scenario();
    s2.selfish_fraction = 0.0;
    s2.malicious_fraction = 0.0;
    let b = run_once(&s2, Arm::ChitChat, 5).summary;
    assert_eq!(a, b);
}
