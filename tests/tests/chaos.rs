//! Chaos suite: the deterministic fault-injection layer exercised under
//! the always-on invariant checker.
//!
//! Every run here audits the cross-cutting invariants (token conservation,
//! rating bounds, buffer accounting, energy sanity) on a short cadence; a
//! breach panics with the seed and fault spec, so a plain green run is the
//! assertion that no fault regime can corrupt the mechanism's books.

use dtn_integration_tests::fast_scenario;
use dtn_sim::faults::FaultPlan;
use dtn_sim::message::MessageId;
use dtn_sim::time::{SimDuration, SimTime};
use dtn_sim::transfer::{RecoveryPolicy, TransferEngine};
use dtn_sim::world::NodeId;
use dtn_workloads::prelude::*;
use dtn_workloads::runner::{build_simulation_checked, run_once_checked};
use proptest::prelude::*;

/// Audit cadence for these tests: every 15 simulated steps. The rating
/// scan is O(nodes²), but at 24 nodes that is noise.
const AUDIT_EVERY: u64 = 15;

fn chaotic(spec: &str) -> Scenario {
    let mut s = fast_scenario();
    s.chaos = Some(spec.parse().expect("test specs are valid"));
    s.named(format!("chaos[{spec}]"))
}

fn run_audited(s: &Scenario, arm: Arm, seed: u64) -> ArmRun {
    run_once_checked(s, arm, seed, None, Some(AUDIT_EVERY)).0
}

/// Named fault regimes covering every fault class the plan grammar can
/// express, alone and combined: crash/reboot churn (with and without
/// buffer wipes), long link outages, rapid contact flaps, battery-drain
/// spikes, and in-flight payload loss/corruption.
const REGIMES: [&str; 10] = [
    "crash=2,crashdown=120",
    "crash=6,crashdown=30,wipe",
    "cut=3,cutdown=120",
    "cut=20,cutdown=5", // contact flaps: frequent, short
    "spike=4,spikej=25",
    "loss=0.1",
    "corrupt=0.1",
    "loss=0.05,corrupt=0.05",
    "crash=3,crashdown=60,cut=6,cutdown=30,loss=0.03",
    "crash=1,crashdown=300,wipe,cut=2,cutdown=60,spike=2,spikej=10,loss=0.02,corrupt=0.02",
];

#[test]
fn every_fault_regime_passes_the_invariant_audit() {
    for spec in REGIMES {
        let s = chaotic(spec);
        let run = run_audited(&s, Arm::Incentive, 42);
        assert!(
            (0.0..=1.0).contains(&run.summary.delivery_ratio),
            "{spec}: ratio {}",
            run.summary.delivery_ratio
        );
        assert!(run.summary.created > 10, "{spec}: workload still generated");
    }
}

#[test]
fn the_baseline_arm_survives_chaos_too() {
    // The checker's kernel-level invariants (buffer accounting, energy
    // sanity) are protocol-agnostic; run the ChitChat arm through the two
    // harshest regimes as well.
    for spec in [REGIMES[1], REGIMES[9]] {
        let s = chaotic(spec);
        let run = run_audited(&s, Arm::ChitChat, 42);
        assert!((0.0..=1.0).contains(&run.summary.delivery_ratio));
    }
}

#[test]
fn chaos_with_finite_batteries_keeps_energy_sane() {
    // Battery spikes against a finite budget: the drain must deplete
    // nodes, never drive remaining charge negative (the audit checks the
    // bound every cadence).
    let mut s = chaotic("spike=30,spikej=40,crash=2,crashdown=60");
    s.battery_joules = Some(120.0);
    let run = run_audited(&s, Arm::Incentive, 7);
    assert!((0.0..=1.0).contains(&run.summary.delivery_ratio));
}

#[test]
fn identical_seed_and_plan_replay_byte_for_byte() {
    // The one-command-replay guarantee behind every breach report: the
    // same (scenario, seed, fault plan) triple reproduces the identical
    // run — kernel statistics AND mechanism counters.
    for spec in [REGIMES[8], REGIMES[3]] {
        let s = chaotic(spec);
        let a = run_audited(&s, Arm::Incentive, 101);
        let b = run_audited(&s, Arm::Incentive, 101);
        assert_eq!(a.summary, b.summary, "{spec}: kernel stats replay");
        assert_eq!(a.protocol, b.protocol, "{spec}: mechanism stats replay");
        assert_eq!(a.broke_nodes, b.broke_nodes);
    }
}

#[test]
fn the_checker_itself_never_perturbs_a_run() {
    // Auditing reads state but must not touch any RNG stream: a clean run
    // and an audited run of the same seed are identical, so leaving the
    // checker on costs time, never fidelity.
    let s = fast_scenario();
    let plain = run_once(&s, Arm::Incentive, 13);
    let audited = run_once_checked(&s, Arm::Incentive, 13, None, Some(1)).0;
    assert_eq!(plain.summary, audited.summary);
    assert_eq!(plain.protocol, audited.protocol);
}

#[test]
fn injected_faults_actually_fire() {
    // Guard against a silently inert layer: the heavy regime must inject
    // a visible volume of every configured fault class.
    let s = chaotic("crash=4,crashdown=60,wipe,cut=10,cutdown=20,loss=0.1");
    let mut sim = build_simulation_checked(&s, Arm::Incentive, 3, None, Some(AUDIT_EVERY));
    let _ = sim.run_until(dtn_sim::time::SimTime::from_secs(s.duration_secs));
    let stats = sim.fault_stats().expect("chaos enabled");
    assert!(stats.crashes > 0, "crashes fired: {stats:?}");
    assert!(stats.reboots > 0, "reboots fired: {stats:?}");
    assert!(stats.link_cuts > 0, "cuts fired: {stats:?}");
    assert!(stats.transfers_lost > 0, "losses fired: {stats:?}");
    assert!(
        sim.invariant_checks_run().expect("checker enabled") > 0,
        "audits actually ran"
    );
}

/// The recovery e2e regression: under payload loss, kernel-driven retries
/// must recover deliveries the retry-less run lost — strictly more pairs
/// delivered on the same seed — and the recovered run must still pass the
/// full invariant audit (byte conservation, token conservation, no
/// double-pay).
#[test]
fn retries_recover_deliveries_lost_to_chaos() {
    let mut lossy = fast_scenario();
    lossy.chaos = Some("loss=0.3".parse().expect("valid spec"));
    let off = run_audited(&lossy.clone().named("retry-off"), Arm::Incentive, 101);
    let mut with_recovery = lossy.named("retry-on");
    with_recovery.recovery = Some(RecoveryPolicy {
        backoff_base_secs: 5.0,
        ..RecoveryPolicy::default()
    });
    let on = run_audited(&with_recovery, Arm::Incentive, 101);
    assert!(on.summary.transfers_retried > 0, "retries actually fired");
    assert!(
        on.summary.delivered_pairs > off.summary.delivered_pairs,
        "retries must recover lost deliveries: {} (on) vs {} (off)",
        on.summary.delivered_pairs,
        off.summary.delivered_pairs
    );
    // Settlement safety held throughout (the audit would have panicked on
    // a double-pay); the books still balance at the end too. Settlements
    // cover every fresh delivery: expected pairs plus bonus deliveries.
    assert_eq!(
        on.protocol.settlements,
        on.summary.delivered_pairs + on.summary.bonus_deliveries
    );
}

/// One operation against a [`TransferEngine`] in the byte-conservation
/// sweep below.
#[derive(Debug, Clone)]
enum EngineOp {
    Enqueue {
        from: u32,
        to: u32,
        msg: u64,
        bytes: u64,
    },
    Step {
        dt_secs: f64,
    },
    AbortBetween {
        a: u32,
        b: u32,
    },
    Cancel {
        from: u32,
        to: u32,
        msg: u64,
    },
}

fn arb_engine_op() -> impl Strategy<Value = EngineOp> {
    // (The vendored proptest stand-in has no `prop_oneof!`; a mapped
    // selector tuple covers the same four-way choice.)
    (
        0u8..4,
        0u32..4,
        0u32..4,
        0u64..6,
        1u64..200_000,
        0.1f64..5.0,
    )
        .prop_map(|(kind, from, to, msg, bytes, dt_secs)| match kind {
            0 => EngineOp::Enqueue {
                from,
                to,
                msg,
                bytes,
            },
            1 => EngineOp::Step { dt_secs },
            2 => EngineOp::AbortBetween { a: from, b: to },
            _ => EngineOp::Cancel { from, to, msg },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transfer-engine byte conservation: across arbitrary interleavings
    /// of enqueue/step/abort/cancel — with and without checkpointing —
    /// every in-flight offset and every saved checkpoint stays within
    /// `[0, bytes_total]`, completions deliver exactly their payload, and
    /// disabling resume leaves no checkpoint behind.
    #[test]
    fn engine_conserves_bytes_under_arbitrary_interleavings(
        resume in prop::bool::ANY,
        ops in prop::collection::vec(arb_engine_op(), 1..60)
    ) {
        let mut engine = TransferEngine::new(4, 10_000.0);
        engine.set_resume(resume);
        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                EngineOp::Enqueue { from, to, msg, bytes } => {
                    if from != to {
                        let _ = engine.enqueue(
                            NodeId(from), NodeId(to), MessageId(msg), bytes, now,
                        );
                    }
                }
                EngineOp::Step { dt_secs } => {
                    let dt = SimDuration::from_secs(dt_secs);
                    let (completed, aborted) = engine.step(
                        dt,
                        now,
                        // Senders deterministically lose some copies so the
                        // SourceGone path is part of the interleaving too.
                        |n, m| (u64::from(n.0) + m.0) % 7 != 0,
                        |_, _| 10.0,
                    );
                    for c in &completed {
                        prop_assert!(c.bytes > 0, "completions carry their payload");
                    }
                    for a in &aborted {
                        prop_assert!(
                            a.bytes_sent >= 0.0,
                            "aborts never report negative progress"
                        );
                    }
                    now += dt;
                }
                EngineOp::AbortBetween { a, b } => {
                    let _ = engine.abort_between(NodeId(a), NodeId(b), now);
                }
                EngineOp::Cancel { from, to, msg } => {
                    let _ = engine.cancel(NodeId(from), NodeId(to), MessageId(msg));
                }
            }
            let violations = engine.audit_bytes();
            prop_assert!(violations.is_empty(), "byte audit breached: {violations:?}");
            if !resume {
                prop_assert_eq!(engine.checkpoint_count(), 0, "no checkpoints without resume");
            }
        }
    }
}

/// A proptest strategy over the whole fault-plan space, including the
/// corners (zero rates, certain loss, instant reboots).
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0.0f64..12.0,  // crash_per_hour
        1.0f64..600.0, // crash_down_secs
        prop::bool::ANY,
        0.0f64..24.0,  // link_cut_per_hour
        1.0f64..300.0, // link_cut_secs
        0.0f64..12.0,  // battery_spike_per_hour
        0.1f64..50.0,  // battery_spike_joules
        0.0f64..=1.0,  // transfer_loss_prob
        0.0f64..=1.0,  // transfer_corrupt_prob
    )
        .prop_map(
            |(crash, down, wipe, cut, cutdown, spike, spikej, loss, corrupt)| FaultPlan {
                crash_per_hour: crash,
                crash_down_secs: down,
                crash_wipes_buffer: wipe,
                link_cut_per_hour: cut,
                link_cut_secs: cutdown,
                battery_spike_per_hour: spike,
                battery_spike_joules: spikej,
                transfer_loss_prob: loss,
                transfer_corrupt_prob: corrupt,
            },
        )
}

/// A smaller world for the randomized sweeps: same density regime,
/// sub-second per run.
fn tiny_scenario() -> Scenario {
    let mut s = fast_scenario();
    s.nodes = 14;
    s.area_km2 = 0.14;
    s.duration_secs = 900.0;
    s.message_ttl_secs = 600.0;
    s.named("chaos-tiny")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomly generated fault plans cannot break the invariants either:
    /// the audit stays green across the whole plan space.
    #[test]
    fn random_fault_plans_never_breach_invariants(
        seed in 0u64..10_000,
        plan in arb_plan()
    ) {
        let mut s = tiny_scenario();
        plan.validate().expect("generated plans are valid");
        s.chaos = Some(plan);
        let run = run_once_checked(&s, Arm::Incentive, seed, None, Some(AUDIT_EVERY)).0;
        prop_assert!((0.0..=1.0).contains(&run.summary.delivery_ratio));
    }

    /// Replay determinism holds for arbitrary plans, not only the named
    /// regimes.
    #[test]
    fn random_fault_plans_replay_identically(
        seed in 0u64..10_000,
        plan in arb_plan()
    ) {
        let mut s = tiny_scenario();
        s.chaos = Some(plan);
        let a = run_once_checked(&s, Arm::Incentive, seed, None, Some(AUDIT_EVERY)).0;
        let b = run_once_checked(&s, Arm::Incentive, seed, None, Some(AUDIT_EVERY)).0;
        prop_assert_eq!(a.summary, b.summary);
        prop_assert_eq!(a.protocol, b.protocol);
    }

    /// The compact spec grammar is lossless: Display → FromStr is the
    /// identity over the whole plan space.
    #[test]
    fn plan_spec_round_trips(plan in arb_plan()) {
        let spec = plan.to_string();
        let back: FaultPlan = spec.parse().expect("rendered specs parse");
        prop_assert_eq!(plan, back, "spec was {}", spec);
    }
}

/// Checkpoint-store pressure: a capacity-1 store under contact flaps and
/// transfer loss evicts constantly, yet the evict → retry →
/// resume-from-zero path keeps the invariant audit green, replays
/// identically, and never double-settles (the audit's token-conservation
/// check would flag a double award).
#[test]
fn checkpoint_eviction_under_pressure_stays_settlement_safe() {
    let mut s = chaotic("cut=20,cutdown=5,loss=0.1");
    s.recovery = Some(RecoveryPolicy {
        resume: true,
        checkpoint_capacity: 1,
        ..RecoveryPolicy::default()
    });
    let s = s.named("chaos-evict");

    let audited = run_audited(&s, Arm::Incentive, 9);
    assert!(
        audited.summary.transfers_retried > 0,
        "the regime must exercise the retry queue"
    );

    // The profiled twin exposes the kernel counters; the observability
    // layer must not change results.
    let (profiled, perf) = dtn_workloads::runner::run_once_perf(&s, Arm::Incentive, 9);
    assert_eq!(audited.summary, profiled.summary, "observers are inert");
    assert!(
        perf.metrics.counter("kernel.checkpoints_evicted") > 0,
        "capacity 1 under flaps must evict"
    );

    // Deterministic replay, evictions included.
    let (replay, perf2) = dtn_workloads::runner::run_once_perf(&s, Arm::Incentive, 9);
    assert_eq!(profiled.summary, replay.summary);
    assert_eq!(
        perf.metrics.counter("kernel.checkpoints_evicted"),
        perf2.metrics.counter("kernel.checkpoints_evicted")
    );

    // An unbounded store on the identical run is the control: no
    // evictions, and the books still balance.
    let mut unbounded = s.clone();
    unbounded.recovery = Some(RecoveryPolicy {
        resume: true,
        checkpoint_capacity: 0,
        ..RecoveryPolicy::default()
    });
    let (_, perf3) = dtn_workloads::runner::run_once_perf(&unbounded, Arm::Incentive, 9);
    assert_eq!(perf3.metrics.counter("kernel.checkpoints_evicted"), 0);
}
