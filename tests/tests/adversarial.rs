//! Adversarial scenarios against the distributed reputation model: smear
//! campaigns, false praise, collusion and whitewashing. These pin down
//! what the mechanism defends against (and document what it does not —
//! the thesis cites whitewashing as handled only by related work [10]).

use dtn_core::strategy::{StrategyKind, StrategyMix};
use dtn_reputation::prelude::*;
use dtn_sim::prelude::*;
use dtn_workloads::prelude::*;

/// α > 0.5 means first-hand experience survives a sustained smear: after
/// `k` hostile reports the rating retains `α^k` of its distance to the
/// smear value, and a single fresh first-hand rating restores the mean of
/// first-hand evidence.
#[test]
fn smear_campaign_cannot_erase_first_hand_trust() {
    let params = RatingParams::paper_default();
    let mut table = ReputationTable::new(NodeId(0), params);
    for _ in 0..5 {
        table.record_message_rating(NodeId(1), 5.0);
    }
    assert_eq!(table.rating_of(NodeId(1)), 5.0);
    // Three colluders each push a 0-rating once per contact, 3 contacts.
    for _ in 0..9 {
        table.merge_reported_rating(NodeId(1), 0.0);
    }
    let after_smear = table.rating_of(NodeId(1));
    assert!(
        after_smear > 0.0,
        "smear converges geometrically, never hard zero: {after_smear}"
    );
    // One more good first-hand interaction recomputes the first-hand mean.
    let restored = table.record_message_rating(NodeId(1), 5.0);
    assert_eq!(
        restored, 5.0,
        "first-hand history fully restores the rating"
    );
}

/// False praise (documented weakness + recovery): the case-2 merge rule
/// `r ← (1−α)·reported + α·r` moves `(1−α)` = 40% of the gap per report,
/// so a *single* max-praise vouch lifts a floor-rated liar from 0.2 to
/// 2.12 — back above the avoidance threshold. The paper's rule is that
/// permissive; what contains the damage is first-hand re-detection: the
/// unblocked liar gets caught again on the next rated reception, and the
/// durable first-hand mean snaps the rating back to the floor.
#[test]
fn false_praise_unblocks_but_first_hand_evidence_reconvicts() {
    let params = RatingParams::paper_default();
    let mut table = ReputationTable::new(NodeId(0), params);
    for _ in 0..5 {
        table.record_message_rating(NodeId(1), 0.2);
    }
    assert!(table.rating_of(NodeId(1)) < 1.0, "caught and blocked");
    // One colluder vouch per the paper's formula: 0.4·5 + 0.6·0.2 = 2.12.
    let after_one_vouch = table.merge_reported_rating(NodeId(1), 5.0);
    assert!(
        (after_one_vouch - 2.12).abs() < 1e-9,
        "a single vouch re-opens the door: {after_one_vouch}"
    );
    // ...but the next first-hand catch restores the first-hand mean, which
    // five bad messages have pinned near the floor.
    let reconvicted = table.record_message_rating(NodeId(1), 0.2);
    assert!(
        reconvicted < 1.0,
        "one more rated reception re-blocks the liar: {reconvicted}"
    );
}

/// A self-praising digest entry is discarded outright.
#[test]
fn self_praise_in_gossip_is_ignored() {
    let params = RatingParams::paper_default();
    let mut honest = ReputationTable::new(NodeId(0), params);
    let digest = GossipDigest {
        ratings: vec![(NodeId(7), 5.0)],
        sequence: 0,
    };
    honest.absorb_digest(NodeId(7), &digest);
    assert!(!honest.knows(NodeId(7)));
    assert_eq!(honest.rating_of(NodeId(7)), params.neutral_rating);
}

/// End-to-end: honest nodes keep paying each other normally while the
/// malicious subpopulation is progressively cut off — the avoidance rule
/// shrinks the liars' relaying income to (near) nothing.
#[test]
fn colluding_taggers_get_economically_isolated() {
    let mut s = reduced_scenario();
    s.nodes = 30;
    s.area_km2 = 0.3;
    s.duration_secs = 2700.0;
    s.malicious_fraction = 0.2;
    s.protocol.rating_prob = 0.5;
    let s = s.named("collusion");
    let mut sim = build_simulation(&s, Arm::Incentive, 17);
    let _ = sim.run_until(SimTime::from_secs(s.duration_secs));
    let (router, _) = sim.finish();

    let mean_balance = |nodes: &[NodeId]| {
        nodes
            .iter()
            .map(|&n| router.ledger().balance(n).amount())
            .sum::<f64>()
            / nodes.len().max(1) as f64
    };
    let malicious = router.malicious_nodes();
    let honest = router.honest_nodes();
    assert!(!malicious.is_empty() && !honest.is_empty());
    assert!(
        mean_balance(&honest) > mean_balance(&malicious),
        "honest nodes out-earn the liars: {} vs {}",
        mean_balance(&honest),
        mean_balance(&malicious)
    );
    assert!(
        router.stats().refused_distrusted_sender > 0,
        "the avoidance rule actually fired"
    );
    assert!(
        router.malicious_average_rating() < s.protocol.rating.neutral_rating,
        "liars sit below neutral"
    );
}

/// Whitewashing (documented limitation): the DRM keys reputation to the
/// node identity, so a "fresh" identity starts back at the neutral prior.
/// The paper does not defend against re-registration (its related work
/// [10] does); this test pins the behavior so the limitation is explicit.
#[test]
fn whitewashing_limitation_fresh_identity_starts_neutral() {
    let params = RatingParams::paper_default();
    let mut observer = ReputationTable::new(NodeId(0), params);
    // Node 1 is caught and rated to the floor.
    for _ in 0..5 {
        observer.record_message_rating(NodeId(1), 0.0);
    }
    assert_eq!(observer.rating_of(NodeId(1)), 0.0);
    // The same adversary "re-registers" as node 2: a clean slate.
    assert_eq!(observer.rating_of(NodeId(2)), params.neutral_rating);
    assert!(!observer.knows(NodeId(2)));
}

/// A 30-node, 45-minute scenario dense enough for the strategic-node
/// machinery to engage, with the given population mix.
fn strategy_scenario(name: &str, mix: StrategyMix) -> Scenario {
    let mut s = reduced_scenario();
    s.nodes = 30;
    s.area_km2 = 0.3;
    s.duration_secs = 2700.0;
    s.protocol.rating_prob = 0.5;
    s.strategies = Some(mix);
    s.named(name)
}

/// Economically rational free-riders accept custody and silently drop.
/// The watchdog is the only component that can see the drop: with the
/// defense armed, senders accumulate unconfirmed hand-offs and start
/// refusing the droppers custody.
#[test]
fn free_riders_are_caught_by_the_watchdog_and_refused_custody() {
    let mix = StrategyMix {
        free_rider_fraction: 0.3,
        defense: true,
        ..StrategyMix::default()
    };
    let s = strategy_scenario("free-riders", mix);
    let mut sim = build_simulation(&s, Arm::Incentive, 17);
    let _ = sim.run_until(SimTime::from_secs(s.duration_secs));
    let (router, _) = sim.finish();
    let stats = router.stats();
    assert!(
        stats.strategy_drops > 0,
        "free riders actually drop custody"
    );
    assert!(
        stats.refused_suspected_dropper > 0,
        "the watchdog custody gate fired"
    );
    let riders: Vec<NodeId> = (0..s.nodes as u32)
        .map(NodeId)
        .filter(|&n| router.strategy(n) == Some(StrategyKind::FreeRider))
        .collect();
    assert_eq!(riders.len(), 9, "0.3 × 30 nodes free-ride");
    let pinned = (0..s.nodes as u32).map(NodeId).any(|observer| {
        router
            .watchdog(observer)
            .is_some_and(|w| riders.iter().any(|&r| w.is_suspicious(r, 0.3, 5)))
    });
    assert!(pinned, "at least one watchdog pinned a dropper");
}

/// Minority-game players open their radio only while the expected token
/// yield beats the energy cost: with an unaffordable cost the players go
/// dark after the probe phase and the network moves fewer messages.
#[test]
fn minority_game_players_shut_their_radio_when_yield_trails_cost() {
    let mix = StrategyMix {
        minority_fraction: 0.4,
        minority_energy_cost: 1000.0,
        ..StrategyMix::default()
    };
    let s = strategy_scenario("minority", mix);
    let mut honest = s.clone();
    honest.strategies = None;
    let run = |scenario: &Scenario| {
        let mut sim = build_simulation(scenario, Arm::Incentive, 17);
        let _ = sim.run_until(SimTime::from_secs(scenario.duration_secs));
        sim.finish()
    };
    let (router, strategic) = run(&s);
    let (_, baseline) = run(&honest);
    let players = (0..s.nodes as u32)
        .map(NodeId)
        .filter(|&n| matches!(router.strategy(n), Some(StrategyKind::MinorityGame { .. })))
        .count();
    assert_eq!(players, 12, "0.4 × 30 nodes play the minority game");
    assert!(
        strategic.relays_completed < baseline.relays_completed,
        "dark radios move fewer messages: {} vs {}",
        strategic.relays_completed,
        baseline.relays_completed
    );
}

/// Colluding tag farmers rate ring mates to the ceiling and outsiders to
/// the floor, so the ring's mutual opinion decouples from the honest
/// population's first-hand experience of the farmers' junk tags.
#[test]
fn tag_farmers_inflate_ring_mates_above_the_honest_view() {
    let mix = StrategyMix {
        farmer_fraction: 0.2,
        ..StrategyMix::default()
    };
    let s = strategy_scenario("farmers", mix);
    let mut sim = build_simulation(&s, Arm::Incentive, 17);
    let _ = sim.run_until(SimTime::from_secs(s.duration_secs));
    let (router, _) = sim.finish();
    let farmers: Vec<NodeId> = (0..s.nodes as u32)
        .map(NodeId)
        .filter(|&n| matches!(router.strategy(n), Some(StrategyKind::TagFarmer { .. })))
        .collect();
    assert_eq!(farmers.len(), 6, "0.2 × 30 nodes farm tags");
    let mean = |observers: &[NodeId], subjects: &[NodeId]| {
        let mut sum = 0.0;
        let mut n = 0u32;
        for &o in observers {
            for &subj in subjects {
                if o != subj {
                    sum += router.reputation(o).rating_of(subj);
                    n += 1;
                }
            }
        }
        sum / f64::from(n.max(1))
    };
    let honest: Vec<NodeId> = (0..s.nodes as u32)
        .map(NodeId)
        .filter(|n| !farmers.contains(n))
        .collect();
    let ring_view = mean(&farmers, &farmers);
    let honest_view = mean(&honest, &farmers);
    assert!(
        ring_view > honest_view,
        "the ring vouches for itself: ring {ring_view:.2} vs honest {honest_view:.2}"
    );
}

/// Whitewashers shed a below-neutral identity by churning: every table
/// and watchdog forgets them and they restart from the neutral prior.
#[test]
fn whitewashers_churn_their_bad_identity() {
    let mix = StrategyMix {
        whitewash_fraction: 0.2,
        churn_interval_secs: 600.0,
        ..StrategyMix::default()
    };
    let s = strategy_scenario("whitewash", mix);
    let mut sim = build_simulation(&s, Arm::Incentive, 17);
    let _ = sim.run_until(SimTime::from_secs(s.duration_secs));
    let (router, _) = sim.finish();
    assert!(
        router.stats().whitewash_churns > 0,
        "at least one identity churn fired"
    );
}

/// Sequenced digests are replay-protected per issuer; legacy unsequenced
/// digests (sequence 0) keep the paper's always-merge behavior.
#[test]
fn sequenced_digests_reject_replays_but_legacy_digests_pass() {
    let params = RatingParams::paper_default();
    let mut issuer = ReputationTable::new(NodeId(1), params);
    issuer.record_message_rating(NodeId(2), 4.0);
    let mut observer = ReputationTable::new(NodeId(0), params);
    let digest = issuer.issue_digest();
    assert!(observer.absorb_digest_weighted(NodeId(1), &digest, 1.0));
    assert!(
        !observer.absorb_digest_weighted(NodeId(1), &digest, 1.0),
        "an identical re-send is a replay"
    );
    let fresh = issuer.issue_digest();
    assert!(
        observer.absorb_digest_weighted(NodeId(1), &fresh, 1.0),
        "the next sequence is accepted"
    );
    let legacy = GossipDigest {
        ratings: vec![(NodeId(2), 4.0)],
        sequence: 0,
    };
    assert!(observer.absorb_digest_weighted(NodeId(1), &legacy, 1.0));
    assert!(
        observer.absorb_digest_weighted(NodeId(1), &legacy, 1.0),
        "unsequenced digests always merge (paper behavior)"
    );
}

/// Strategy runs replay exactly: identical (scenario, seed) pairs produce
/// identical economics, drop counts and delivery.
#[test]
fn strategy_runs_are_deterministic() {
    let mix = StrategyMix {
        free_rider_fraction: 0.2,
        farmer_fraction: 0.1,
        whitewash_fraction: 0.1,
        churn_interval_secs: 600.0,
        defense: true,
        ..StrategyMix::default()
    };
    let s = strategy_scenario("determinism", mix);
    let run = |seed| {
        let mut sim = build_simulation(&s, Arm::Incentive, seed);
        let _ = sim.run_until(SimTime::from_secs(s.duration_secs));
        let (router, summary) = sim.finish();
        (
            router.stats(),
            router.attacker_tokens(),
            summary.delivery_ratio,
        )
    };
    let (stats_a, tokens_a, mdr_a) = run(23);
    let (stats_b, tokens_b, mdr_b) = run(23);
    assert_eq!(stats_a.strategy_drops, stats_b.strategy_drops);
    assert_eq!(stats_a.whitewash_churns, stats_b.whitewash_churns);
    assert_eq!(
        stats_a.refused_suspected_dropper,
        stats_b.refused_suspected_dropper
    );
    assert_eq!(stats_a.settlements, stats_b.settlements);
    assert_eq!(tokens_a, tokens_b);
    assert_eq!(mdr_a, mdr_b);
    assert!(stats_a.strategy_drops > 0, "the mix actually engaged");
}

/// Selfish free-riding is punished even without the DRM: with the DRM off
/// entirely, the token economy alone still starves pure consumers.
#[test]
fn token_economy_alone_punishes_free_riders() {
    let mut s = reduced_scenario();
    s.nodes = 24;
    s.area_km2 = 0.24;
    s.duration_secs = 1800.0;
    s.message_interval_secs = 20.0;
    s.protocol.incentive.initial_tokens = 15.0;
    s.protocol.drm_enabled = false;
    s.protocol.enrichment_enabled = false;
    s.selfish_fraction = 0.3;
    let s = s.named("no-drm-free-riders");
    let mut sim = build_simulation(&s, Arm::Incentive, 4);
    let _ = sim.run_until(SimTime::from_secs(s.duration_secs));
    let (router, _) = sim.finish();
    assert!(
        router.stats().refused_broke_destination > 0,
        "free riders hit the token wall without any reputation machinery"
    );
    assert_eq!(
        router.stats().refused_distrusted_sender,
        0,
        "DRM really off"
    );
}
