//! Adversarial scenarios against the distributed reputation model: smear
//! campaigns, false praise, collusion and whitewashing. These pin down
//! what the mechanism defends against (and document what it does not —
//! the thesis cites whitewashing as handled only by related work [10]).

use dtn_reputation::prelude::*;
use dtn_sim::prelude::*;
use dtn_workloads::prelude::*;

/// α > 0.5 means first-hand experience survives a sustained smear: after
/// `k` hostile reports the rating retains `α^k` of its distance to the
/// smear value, and a single fresh first-hand rating restores the mean of
/// first-hand evidence.
#[test]
fn smear_campaign_cannot_erase_first_hand_trust() {
    let params = RatingParams::paper_default();
    let mut table = ReputationTable::new(NodeId(0), params);
    for _ in 0..5 {
        table.record_message_rating(NodeId(1), 5.0);
    }
    assert_eq!(table.rating_of(NodeId(1)), 5.0);
    // Three colluders each push a 0-rating once per contact, 3 contacts.
    for _ in 0..9 {
        table.merge_reported_rating(NodeId(1), 0.0);
    }
    let after_smear = table.rating_of(NodeId(1));
    assert!(
        after_smear > 0.0,
        "smear converges geometrically, never hard zero: {after_smear}"
    );
    // One more good first-hand interaction recomputes the first-hand mean.
    let restored = table.record_message_rating(NodeId(1), 5.0);
    assert_eq!(
        restored, 5.0,
        "first-hand history fully restores the rating"
    );
}

/// False praise (documented weakness + recovery): the case-2 merge rule
/// `r ← (1−α)·reported + α·r` moves `(1−α)` = 40% of the gap per report,
/// so a *single* max-praise vouch lifts a floor-rated liar from 0.2 to
/// 2.12 — back above the avoidance threshold. The paper's rule is that
/// permissive; what contains the damage is first-hand re-detection: the
/// unblocked liar gets caught again on the next rated reception, and the
/// durable first-hand mean snaps the rating back to the floor.
#[test]
fn false_praise_unblocks_but_first_hand_evidence_reconvicts() {
    let params = RatingParams::paper_default();
    let mut table = ReputationTable::new(NodeId(0), params);
    for _ in 0..5 {
        table.record_message_rating(NodeId(1), 0.2);
    }
    assert!(table.rating_of(NodeId(1)) < 1.0, "caught and blocked");
    // One colluder vouch per the paper's formula: 0.4·5 + 0.6·0.2 = 2.12.
    let after_one_vouch = table.merge_reported_rating(NodeId(1), 5.0);
    assert!(
        (after_one_vouch - 2.12).abs() < 1e-9,
        "a single vouch re-opens the door: {after_one_vouch}"
    );
    // ...but the next first-hand catch restores the first-hand mean, which
    // five bad messages have pinned near the floor.
    let reconvicted = table.record_message_rating(NodeId(1), 0.2);
    assert!(
        reconvicted < 1.0,
        "one more rated reception re-blocks the liar: {reconvicted}"
    );
}

/// A self-praising digest entry is discarded outright.
#[test]
fn self_praise_in_gossip_is_ignored() {
    let params = RatingParams::paper_default();
    let mut honest = ReputationTable::new(NodeId(0), params);
    let digest = GossipDigest {
        ratings: vec![(NodeId(7), 5.0)],
    };
    honest.absorb_digest(NodeId(7), &digest);
    assert!(!honest.knows(NodeId(7)));
    assert_eq!(honest.rating_of(NodeId(7)), params.neutral_rating);
}

/// End-to-end: honest nodes keep paying each other normally while the
/// malicious subpopulation is progressively cut off — the avoidance rule
/// shrinks the liars' relaying income to (near) nothing.
#[test]
fn colluding_taggers_get_economically_isolated() {
    let mut s = reduced_scenario();
    s.nodes = 30;
    s.area_km2 = 0.3;
    s.duration_secs = 2700.0;
    s.malicious_fraction = 0.2;
    s.protocol.rating_prob = 0.5;
    let s = s.named("collusion");
    let mut sim = build_simulation(&s, Arm::Incentive, 17);
    let _ = sim.run_until(SimTime::from_secs(s.duration_secs));
    let (router, _) = sim.finish();

    let mean_balance = |nodes: &[NodeId]| {
        nodes
            .iter()
            .map(|&n| router.ledger().balance(n).amount())
            .sum::<f64>()
            / nodes.len().max(1) as f64
    };
    let malicious = router.malicious_nodes();
    let honest = router.honest_nodes();
    assert!(!malicious.is_empty() && !honest.is_empty());
    assert!(
        mean_balance(&honest) > mean_balance(&malicious),
        "honest nodes out-earn the liars: {} vs {}",
        mean_balance(&honest),
        mean_balance(&malicious)
    );
    assert!(
        router.stats().refused_distrusted_sender > 0,
        "the avoidance rule actually fired"
    );
    assert!(
        router.malicious_average_rating() < s.protocol.rating.neutral_rating,
        "liars sit below neutral"
    );
}

/// Whitewashing (documented limitation): the DRM keys reputation to the
/// node identity, so a "fresh" identity starts back at the neutral prior.
/// The paper does not defend against re-registration (its related work
/// [10] does); this test pins the behavior so the limitation is explicit.
#[test]
fn whitewashing_limitation_fresh_identity_starts_neutral() {
    let params = RatingParams::paper_default();
    let mut observer = ReputationTable::new(NodeId(0), params);
    // Node 1 is caught and rated to the floor.
    for _ in 0..5 {
        observer.record_message_rating(NodeId(1), 0.0);
    }
    assert_eq!(observer.rating_of(NodeId(1)), 0.0);
    // The same adversary "re-registers" as node 2: a clean slate.
    assert_eq!(observer.rating_of(NodeId(2)), params.neutral_rating);
    assert!(!observer.knows(NodeId(2)));
}

/// Selfish free-riding is punished even without the DRM: with the DRM off
/// entirely, the token economy alone still starves pure consumers.
#[test]
fn token_economy_alone_punishes_free_riders() {
    let mut s = reduced_scenario();
    s.nodes = 24;
    s.area_km2 = 0.24;
    s.duration_secs = 1800.0;
    s.message_interval_secs = 20.0;
    s.protocol.incentive.initial_tokens = 15.0;
    s.protocol.drm_enabled = false;
    s.protocol.enrichment_enabled = false;
    s.selfish_fraction = 0.3;
    let s = s.named("no-drm-free-riders");
    let mut sim = build_simulation(&s, Arm::Incentive, 4);
    let _ = sim.run_until(SimTime::from_secs(s.duration_secs));
    let (router, _) = sim.finish();
    assert!(
        router.stats().refused_broke_destination > 0,
        "free riders hit the token wall without any reputation machinery"
    );
    assert_eq!(
        router.stats().refused_distrusted_sender,
        0,
        "DRM really off"
    );
}
