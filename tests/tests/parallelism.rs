//! Determinism under parallelism.
//!
//! The kernel's `threads` knob shards mobility stepping and contact
//! detection, and the transfer engine steps an incrementally-maintained
//! active-sender index instead of scanning every queue. None of that may
//! change a single byte of output: these tests pit sharded runs against
//! the serial path at the trace level, and the batched index against a
//! brute-force queue scan under arbitrary op interleavings.

use dtn_integration_tests::fast_scenario;
use dtn_sim::message::MessageId;
use dtn_sim::time::{SimDuration, SimTime};
use dtn_sim::transfer::TransferEngine;
use dtn_sim::world::NodeId;
use dtn_workloads::prelude::*;
use dtn_workloads::runner::run_once_checked;
use proptest::prelude::*;

const TRACE_CAPACITY: usize = 200_000;
const SEEDS: [u64; 3] = [101, 202, 303];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `scenario` at a given shard count, returning every observable
/// surface: the rendered kernel trace, the run summary and protocol stats
/// serialized to JSON (byte-level comparison, not approximate equality).
fn observable_output(scenario: &Scenario, arm: Arm, seed: u64, threads: usize) -> (String, String) {
    let mut s = scenario.clone();
    s.threads = Some(threads);
    let (run, trace) = run_once_checked(&s, arm, seed, Some(TRACE_CAPACITY), Some(60));
    let summary = serde_json::to_string(&run.summary).expect("summary serializes");
    let protocol = format!("{:?}", run.protocol);
    (trace.expect("trace attached"), summary + &protocol)
}

/// Golden-trace equivalence: traces and summaries are byte-identical at
/// `threads` ∈ {1, 2, 8} across three seeds and both arms.
#[test]
fn threads_do_not_change_a_single_byte() {
    let scenario = fast_scenario();
    for arm in [Arm::Incentive, Arm::ChitChat] {
        for seed in SEEDS {
            let (base_trace, base_rest) = observable_output(&scenario, arm, seed, 1);
            for threads in &THREAD_COUNTS[1..] {
                let (trace, rest) = observable_output(&scenario, arm, seed, *threads);
                assert_eq!(
                    trace, base_trace,
                    "trace diverged at threads={threads}, arm={arm:?}, seed={seed}"
                );
                assert_eq!(
                    rest, base_rest,
                    "summary/stats diverged at threads={threads}, arm={arm:?}, seed={seed}"
                );
            }
        }
    }
}

/// The equivalence must also hold with the fault layer vetoing links and
/// the recovery layer re-enqueueing aborts — both paths share the reused
/// in-range scratch buffer with the plain run.
#[test]
fn threads_do_not_change_chaotic_recovery_runs() {
    let mut scenario = fast_scenario();
    scenario.chaos = Some(
        "crash=3,crashdown=60,wipe,cut=6,cutdown=30,loss=0.05,corrupt=0.02"
            .parse()
            .expect("valid spec"),
    );
    scenario.recovery = Some(dtn_sim::transfer::RecoveryPolicy::default());
    for seed in SEEDS {
        let (base_trace, base_rest) = observable_output(&scenario, Arm::Incentive, seed, 1);
        for threads in [2, 8] {
            let (trace, rest) = observable_output(&scenario, Arm::Incentive, seed, threads);
            assert_eq!(trace, base_trace, "chaotic trace diverged at {threads}");
            assert_eq!(rest, base_rest, "chaotic summary diverged at {threads}");
        }
    }
}

/// Thread counts exceeding both the node count and the grid's row count
/// degrade gracefully to however many stripes exist.
#[test]
fn more_threads_than_work_is_fine() {
    let mut scenario = fast_scenario();
    scenario.nodes = 3;
    scenario.area_km2 = 0.03;
    scenario.duration_secs = 600.0;
    scenario.message_ttl_secs = 300.0;
    let (base_trace, base_rest) = observable_output(&scenario, Arm::Incentive, 101, 1);
    let (trace, rest) = observable_output(&scenario, Arm::Incentive, 101, 64);
    assert_eq!(trace, base_trace);
    assert_eq!(rest, base_rest);
}

/// One op against a [`TransferEngine`] (mirrors the chaos suite's
/// byte-conservation strategy; here the property under test is the
/// active-sender index).
#[derive(Debug, Clone)]
enum EngineOp {
    Enqueue {
        from: u32,
        to: u32,
        msg: u64,
        bytes: u64,
    },
    Step {
        dt_secs: f64,
    },
    AbortBetween {
        a: u32,
        b: u32,
    },
    Cancel {
        from: u32,
        to: u32,
        msg: u64,
    },
}

fn arb_engine_op() -> impl Strategy<Value = EngineOp> {
    (
        0u8..4,
        0u32..5,
        0u32..5,
        0u64..6,
        1u64..150_000,
        0.1f64..5.0,
    )
        .prop_map(|(kind, from, to, msg, bytes, dt_secs)| match kind {
            0 => EngineOp::Enqueue {
                from,
                to,
                msg,
                bytes,
            },
            1 => EngineOp::Step { dt_secs },
            2 => EngineOp::AbortBetween { a: from, b: to },
            _ => EngineOp::Cancel { from, to, msg },
        })
}

/// Brute-force reference: the set of senders with non-empty queues, read
/// straight off the queues the index is supposed to mirror.
fn scan_active(engine: &TransferEngine, nodes: u32) -> Vec<u32> {
    (0..nodes)
        .filter(|&n| engine.queue_len(NodeId(n)) > 0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batched active-sender index agrees with a brute-force scan of
    /// all queues after every op in an arbitrary interleaving of
    /// enqueue/step/abort/cancel, with and without checkpointing.
    #[test]
    fn active_index_matches_brute_force_scan(
        resume in prop::bool::ANY,
        ops in prop::collection::vec(arb_engine_op(), 1..60)
    ) {
        const NODES: u32 = 5;
        let mut engine = TransferEngine::new(NODES as usize, 10_000.0);
        engine.set_resume(resume);
        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                EngineOp::Enqueue { from, to, msg, bytes } => {
                    if from != to {
                        let _ = engine.enqueue(
                            NodeId(from), NodeId(to), MessageId(msg), bytes, now,
                        );
                    }
                }
                EngineOp::Step { dt_secs } => {
                    let dt = SimDuration::from_secs(dt_secs);
                    let _ = engine.step(
                        dt,
                        now,
                        // Some senders deterministically lose copies so the
                        // SourceGone drain path maintains the index too.
                        |n, m| (u64::from(n.0) + m.0) % 5 != 0,
                        |_, _| 10.0,
                    );
                    now += dt;
                }
                EngineOp::AbortBetween { a, b } => {
                    let _ = engine.abort_between(NodeId(a), NodeId(b), now);
                }
                EngineOp::Cancel { from, to, msg } => {
                    let _ = engine.cancel(NodeId(from), NodeId(to), MessageId(msg));
                }
            }
            let audit = engine.audit_active_index();
            prop_assert!(audit.is_ok(), "index audit failed: {:?}", audit);
            let scanned = scan_active(&engine, NODES);
            prop_assert_eq!(
                engine.active_senders(),
                scanned.len(),
                "index size diverged from scan {:?}",
                scanned
            );
        }
    }
}
