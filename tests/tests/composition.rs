//! Composition tests across extension modules: the watchdog feeding the
//! DRM, result serialization, and summary aggregation edge cases.

use dtn_reputation::prelude::*;
use dtn_sim::message::MessageId;
use dtn_sim::stats::RunSummary;
use dtn_sim::world::NodeId;
use dtn_workloads::prelude::*;

/// The watchdog's behavioral evidence composes with the content-based DRM
/// through the case-2 merge: a silent dropper that the content ratings
/// cannot see (it never delivers anything to be rated) still ends up below
/// the avoidance threshold once watchdog projections are merged in.
#[test]
fn watchdog_evidence_flows_into_the_drm() {
    let params = RatingParams::paper_default();
    let mut table = ReputationTable::new(NodeId(0), params);
    let mut dog = Watchdog::new();

    // Twenty hand-offs to node 7, nothing ever confirmed.
    for m in 0..20u64 {
        dog.record_handoff(NodeId(7), MessageId(m));
    }
    assert!(dog.is_suspicious(NodeId(7), 0.3, 10));
    assert_eq!(
        table.rating_of(NodeId(7)),
        params.neutral_rating,
        "content DRM alone is blind to silent dropping"
    );

    // Merge the watchdog's projection periodically (as a protocol would).
    for _ in 0..6 {
        let projected = dog.as_rating(NodeId(7), params.max_rating);
        table.merge_reported_rating(NodeId(7), projected);
    }
    assert!(
        table.rating_of(NodeId(7)) < 1.0,
        "dropper sinks below the avoidance threshold: {}",
        table.rating_of(NodeId(7))
    );
}

/// Run summaries serialize losslessly — the contract the CLI's `--json`
/// output and any downstream analysis pipeline rely on.
#[test]
fn run_summary_json_round_trip() {
    let mut s = reduced_scenario();
    s.nodes = 12;
    s.area_km2 = 0.12;
    s.duration_secs = 600.0;
    s.message_ttl_secs = 500.0;
    let run = run_once(&s.named("serde"), Arm::Incentive, 3);
    let json = serde_json::to_string(&run.summary).expect("serialize");
    let back: RunSummary = serde_json::from_str(&json).expect("deserialize");
    // Integer fields round-trip exactly; float fields to within 1 ULP of
    // the JSON decimal representation.
    assert_eq!(run.summary.created, back.created);
    assert_eq!(run.summary.delivered_pairs, back.delivered_pairs);
    assert_eq!(run.summary.relays_completed, back.relays_completed);
    assert_eq!(run.summary.relay_bytes, back.relay_bytes);
    assert!((run.summary.delivery_ratio - back.delivery_ratio).abs() < 1e-12);
    assert!((run.summary.mean_latency_secs - back.mean_latency_secs).abs() < 1e-9);
    assert_eq!(
        run.summary.delivery_ratio_by_priority.len(),
        back.delivery_ratio_by_priority.len()
    );
    assert_eq!(run.summary.series.len(), back.series.len());
}

/// `RunSummary::mean_of` with misaligned series resamples onto the
/// common time range by linear interpolation rather than corrupting the
/// average (or silently dropping all but the first run).
#[test]
fn mean_of_with_misaligned_series_resamples() {
    use dtn_sim::message::Priority;
    use dtn_sim::stats::StatsCollector;
    use dtn_sim::time::SimTime;

    let mut a = StatsCollector::new();
    a.record_created(MessageId(1), Priority::High, [NodeId(1)]);
    a.push_sample("s", SimTime::from_secs(10.0), 1.0);
    a.push_sample("s", SimTime::from_secs(20.0), 2.0);
    let mut b = StatsCollector::new();
    b.record_created(MessageId(1), Priority::High, [NodeId(1)]);
    b.push_sample("s", SimTime::from_secs(15.0), 9.0); // different cadence
    let mean = RunSummary::mean_of(&[a.summarize(), b.summarize()]);
    // Common range is the single instant t=15, where a interpolates to
    // 1.5 and b sits at 9.0; the mean is their average.
    let s = &mean.series["s"];
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].0, 15.0);
    assert!((s[0].1 - 5.25).abs() < 1e-12, "got {}", s[0].1);
}

/// A one-node world is degenerate but legal: no contacts, no deliveries,
/// no panics.
#[test]
fn single_node_world_is_inert() {
    let mut s = reduced_scenario();
    s.nodes = 1;
    s.area_km2 = 0.01;
    s.duration_secs = 300.0;
    s.message_ttl_secs = 200.0;
    let run = run_once(&s.named("lonely"), Arm::Incentive, 1);
    assert_eq!(run.summary.relays_completed, 0);
    assert_eq!(run.summary.delivered_pairs, 0);
    assert!(run.summary.created > 0, "the hermit still takes photos");
}

/// Scenario templates produced by the CLI run under both arms unchanged —
/// the full user journey `template → run` holds together.
#[test]
fn cli_template_is_runnable() {
    let json = dtn_cli::template_json();
    let mut scenario: Scenario = serde_json::from_str(&json).expect("template parses");
    // Shrink the template so the test is quick; the *structure* is what
    // came from the CLI.
    scenario.nodes = 15;
    scenario.area_km2 = 0.15;
    scenario.duration_secs = 600.0;
    scenario.message_ttl_secs = 500.0;
    for arm in Arm::BOTH {
        let run = run_once(&scenario, arm, 2);
        assert!(run.summary.created > 0, "{arm:?}");
    }
}
