//! Figure-shape smoke tests: tiny, fast versions of the qualitative claims
//! each figure of the evaluation makes. The full-resolution sweeps live in
//! `dtn-bench`; these tests pin the *directions* so a regression that
//! flips a conclusion fails CI.

use dtn_core::protocol::MALICIOUS_RATING_SERIES;
use dtn_integration_tests::fast_scenario;
use dtn_workloads::prelude::*;

const SEEDS: [u64; 2] = [11, 22];

/// Fig 5.1 direction: MDR decreases as the selfish fraction rises.
#[test]
fn fig5_1_shape_mdr_decreases_with_selfishness() {
    let mdr_at = |frac: f64| {
        let mut s = fast_scenario();
        s.selfish_fraction = frac;
        run_seeds(&s, Arm::Incentive, &SEEDS).delivery_ratio
    };
    let lo = mdr_at(0.0);
    let mid = mdr_at(0.5);
    let hi = mdr_at(1.0);
    assert!(
        lo > mid && mid > hi,
        "monotone decrease: {lo} > {mid} > {hi}"
    );
    assert!(
        hi >= 0.0,
        "selfish nodes still forward 1-in-10, never hard zero"
    );
}

/// Fig 5.2 direction: the mechanism's traffic saving grows with the
/// selfish fraction.
///
/// The saving curve rises from zero selfishness up to the paper's mid
/// range and flattens beyond it, and at this reduced scale the slope
/// between two nearby fractions is dominated by seed noise. The test
/// therefore compares the no-selfishness baseline against the mid range
/// and averages over more seeds than the other figures — the same
/// qualitative claim, sampled where the signal is.
#[test]
fn fig5_2_shape_saving_grows_with_selfishness() {
    const SAVING_SEEDS: [u64; 6] = [1, 2, 3, 4, 5, 6];
    let reduction_at = |frac: f64| {
        let mut s = fast_scenario();
        s.selfish_fraction = frac;
        compare_arms(&s, &SAVING_SEEDS).traffic_reduction_pct()
    };
    let low = reduction_at(0.0);
    let high = reduction_at(0.4);
    assert!(
        high > low,
        "more selfishness → more saving: {high}% vs {low}%"
    );
    assert!(low > -5.0, "saving never meaningfully negative: {low}%");
}

/// Fig 5.3 direction: more initial tokens → higher MDR (starvation bites
/// later).
#[test]
fn fig5_3_shape_more_tokens_more_delivery() {
    let mdr_with_tokens = |tokens: f64| {
        let mut s = fast_scenario();
        s.selfish_fraction = 0.4;
        s.protocol.incentive.initial_tokens = tokens;
        run_seeds(&s, Arm::Incentive, &SEEDS).delivery_ratio
    };
    let poor = mdr_with_tokens(4.0);
    let rich = mdr_with_tokens(200.0);
    assert!(
        rich > poor,
        "a larger endowment delivers more: {rich} vs {poor}"
    );
}

/// Fig 5.4 direction: the malicious average rating ends below where it
/// starts, and below the neutral prior.
#[test]
fn fig5_4_shape_malicious_rating_decays() {
    let mut s = fast_scenario();
    s.malicious_fraction = 0.25;
    s.protocol.rating_prob = 0.5;
    let summary = run_seeds(&s, Arm::Incentive, &SEEDS);
    let series = summary
        .series
        .get(MALICIOUS_RATING_SERIES)
        .expect("series sampled");
    assert!(series.len() >= 2);
    let first = series[0].1;
    let last = series[series.len() - 1].1;
    assert!(last <= first, "no recovery: {first} → {last}");
    assert!(last < 2.5, "ends below the neutral prior: {last}");
}

/// Fig 5.5 direction: more users on the same area → higher MDR, and the
/// ChitChat−Incentive gap does not widen.
#[test]
fn fig5_5_shape_density_helps_and_closes_the_gap() {
    let cmp_at = |nodes: usize| {
        let mut s = fast_scenario();
        s.nodes = nodes;
        s.selfish_fraction = 0.3;
        compare_arms(&s, &SEEDS)
    };
    let sparse = cmp_at(12);
    let dense = cmp_at(36);
    assert!(
        dense.incentive.delivery_ratio > sparse.incentive.delivery_ratio,
        "density raises incentive MDR: {} vs {}",
        dense.incentive.delivery_ratio,
        sparse.incentive.delivery_ratio
    );
    assert!(
        dense.chitchat.delivery_ratio >= sparse.chitchat.delivery_ratio,
        "density raises chitchat MDR"
    );
}

/// Fig 5.6 direction: under the 50/30/20 mix the incentive arm delivers
/// high-priority messages at least as well as ChitChat does, and favors
/// them over its own low-priority traffic.
#[test]
fn fig5_6_shape_high_priority_favored() {
    let mut s = fast_scenario();
    s.selfish_fraction = 0.4;
    // Contention so prioritization matters: small buffers.
    s.buffer_bytes = 8_000_000;
    s.message_interval_secs = 10.0;
    let cmp = compare_arms(&s, &SEEDS);
    let inc_high = cmp.incentive.delivery_ratio_by_priority[&1];
    let inc_low = cmp
        .incentive
        .delivery_ratio_by_priority
        .get(&3)
        .copied()
        .unwrap_or(0.0);
    assert!(
        inc_high >= inc_low,
        "incentive favors high priority: {inc_high} vs {inc_low}"
    );
    let cc_high = cmp.chitchat.delivery_ratio_by_priority[&1];
    let cc_low = cmp
        .chitchat
        .delivery_ratio_by_priority
        .get(&3)
        .copied()
        .unwrap_or(0.0);
    // ChitChat is priority-blind: its high/low split shows no comparable
    // systematic preference (allow noise, just require the incentive arm's
    // preference to be at least as strong).
    assert!(
        inc_high - inc_low >= cc_high - cc_low - 0.05,
        "incentive prioritization at least matches chitchat: {inc_high}-{inc_low} vs {cc_high}-{cc_low}"
    );
}

/// Loss-figure direction: under in-flight payload loss, turning the
/// kernel's retry layer on never loses deliveries, and at deep loss it
/// strictly recovers some. Runs through the sweep executor — the same
/// path the `loss` figure binary takes.
#[test]
fn loss_shape_retries_dominate_at_every_loss_level() {
    use dtn_sim::transfer::RecoveryPolicy;
    use dtn_workloads::sweep::{run_cells, Cell};

    let delivered_at = |loss: f64, retries: bool| {
        let mut s = fast_scenario();
        s.chaos = Some(format!("loss={loss}").parse().expect("valid spec"));
        if retries {
            s.recovery = Some(RecoveryPolicy {
                backoff_base_secs: 5.0,
                ..RecoveryPolicy::default()
            });
        }
        let cells: Vec<Cell> = SEEDS
            .iter()
            .map(|&seed| Cell::arm(s.clone(), Arm::Incentive, seed))
            .collect();
        let results = run_cells(&cells);
        let pairs: u64 = results.iter().map(|r| r.summary.delivered_pairs).sum();
        let retried: u64 = results.iter().map(|r| r.summary.transfers_retried).sum();
        (pairs, retried)
    };

    for loss in [0.2, 0.4] {
        let (off, _) = delivered_at(loss, false);
        let (on, retried) = delivered_at(loss, true);
        assert!(retried > 0, "loss {loss}: the retry queue actually fired");
        assert!(
            on >= off,
            "loss {loss}: retries never lose deliveries ({on} vs {off})"
        );
    }
    let (off_deep, _) = delivered_at(0.4, false);
    let (on_deep, _) = delivered_at(0.4, true);
    assert!(
        on_deep > off_deep,
        "deep loss: retries strictly recover deliveries ({on_deep} vs {off_deep})"
    );
}
